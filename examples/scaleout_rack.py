"""A two-domain, multi-switch composable rack.

Run:  python examples/scaleout_rack.py

Everything the single-switch examples skip: a spine/leaf fabric with
two CXL domains glued by an HBR link, adaptive multipath between the
spines, per-domain FAM chassis, cross-domain access costs, and an
HDM-interleaved region striped over both local chassis.
"""

from repro import params
from repro.fabric import Channel, Packet, PacketKind
from repro.infra import HostServer
from repro.infra.chassis import FamChassis
from repro.mem import CpulessExpander
from repro.pcie import FabricManager, PortRole, Topology
from repro.sim import Environment


def main() -> None:
    env = Environment()
    topo = Topology(env)
    # Domain 0: two spines (parallel paths) + a leaf each side.
    for name, domain in (("leaf0", 0), ("spineA", 0), ("spineB", 0),
                         ("leaf1", 0), ("gw1", 1)):
        switch = topo.add_switch(name, domain=domain)
        switch.adaptive_routing = True
    topo.connect_switches("leaf0", "spineA")
    topo.connect_switches("leaf0", "spineB")
    topo.connect_switches("spineA", "leaf1")
    topo.connect_switches("spineB", "leaf1")
    topo.connect_switches("leaf1", "gw1")        # HBR: domain 0 <-> 1

    topo.add_endpoint("host0", domain=0)
    host_port = topo.connect_endpoint("leaf0", "host0",
                                      role=PortRole.UPSTREAM)
    fams = {}
    for name, leaf, domain in (("famA", "leaf1", 0), ("famB", "leaf1", 0),
                               ("famFar", "gw1", 1)):
        topo.add_endpoint(name, domain=domain)
        port = topo.connect_endpoint(leaf, name)
        fams[name] = FamChassis(
            env, port,
            [CpulessExpander(env, 1 << 26, name=f"{name}.mod0",
                             read_extra_ns=params.FAM_MEDIA_READ_NS,
                             write_extra_ns=params.FAM_MEDIA_WRITE_NS)],
            name=name)
    manager = FabricManager(topo)
    installed = manager.configure()
    print(f"fabric manager installed {installed} routes "
          f"(ECMP across both spines)")
    assert topo.is_hbr_link("leaf1", "gw1")

    host = HostServer(env, "host0", host_port, local_bytes=1 << 30)
    for name, fam in fams.items():
        host.map_remote(name, topo.endpoints[name].global_id,
                        fam.capacity_bytes)
    stripe = host.map_interleaved(
        "stripe", [("famA*", topo.endpoints["famA"].global_id),
                   ("famB*", topo.endpoints["famB"].global_id)],
        size=32 << 20)

    report = {}

    def tour():
        # Same-domain access: host -> leaf0 -> spine -> leaf1 -> famA.
        start = env.now
        yield from host.mem.access(host.remote_base("famA") + 0x1000,
                                   False)
        report["same-domain read ns"] = env.now - start
        # Cross-domain: one more switch (the domain-1 gateway) via HBR.
        start = env.now
        yield from host.mem.access(host.remote_base("famFar") + 0x1000,
                                   False)
        report["cross-domain read ns"] = env.now - start
        # Interleaved stream over famA+famB, pipelined.
        workers = []
        start = env.now

        def stream(worker, slices):
            offset = worker * 16384
            while offset < 128 * 1024:
                yield from host.mem.access(stripe.start + offset, False,
                                           16384)
                offset += slices * 16384

        for worker in range(4):
            workers.append(env.process(stream(worker, 4)))
        yield env.all_of(workers)
        elapsed = env.now - start
        report["interleaved 128KiB stream GB/s"] = 128 * 1024 / elapsed

    proc = env.process(tour())
    env.run(until=10_000_000_000, until_event=proc)

    for key, value in report.items():
        print(f"  {key:<32} {value:10.1f}")
    spine_a = topo.switches["spineA"].flits_forwarded
    spine_b = topo.switches["spineB"].flits_forwarded
    print(f"  spine flits (adaptive multipath)   A={spine_a}  B={spine_b}")
    print()
    print(manager.describe())


if __name__ == "__main__":
    main()
