"""Quickstart: build a composable rack and touch every FCC service.

Run:  python examples/quickstart.py

Builds the Figure 1(b) architecture (two hosts, one FAM chassis, one
FAA chassis, a managed switch), layers UniFabric on top, and then:

1. measures local vs remote cacheline latency (Table 2's contrast);
2. allocates objects in the unified heap and reads them through smart
   pointers;
3. moves data with an elastic transaction;
4. reserves egress credits through the central arbiter;
5. launches a kernel on the FAA.
"""

from repro import (
    ClusterSpec,
    Environment,
    ETrans,
    FaaSpec,
    UniFabric,
    build_cluster,
)
from repro.fabric import Channel, Packet, PacketKind
from repro.pcie import CreditDomain


def main() -> None:
    env = Environment()
    cluster = build_cluster(env, ClusterSpec(
        hosts=2,
        faas=[FaaSpec(name="faa0", accelerators=2)],
        control_lane=True))
    uni = UniFabric(env, cluster, with_arbiter=True)

    print("=" * 64)
    print(cluster.describe())
    print("=" * 64)

    host = cluster.host(0)
    heap = uni.heap("host0")
    engine = uni.engine("host0")
    base = host.remote_base("fam0")
    report = {}

    def demo():
        # 1. Local vs remote latency (the Table 2 contrast).
        start = env.now
        yield from host.mem.access(0x40000, False)
        report["local read ns"] = env.now - start
        start = env.now
        yield from host.mem.access(base + 0x40000, False)
        report["remote read ns"] = env.now - start

        # 2. Unified heap + smart pointers.
        fast = heap.allocate(4096)                      # lands locally
        far = heap.allocate(4096, prefer_tier="cpuless-numa")
        start = env.now
        yield from fast.read()
        report["heap local object ns"] = env.now - start
        start = env.now
        yield from far.read()
        report["heap remote object ns"] = env.now - start

        # 3. An elastic transaction: stage 64KB of remote data locally.
        trans = ETrans(src_list=[(base + 0x100000, 64 * 1024)],
                       dst_list=[(0x200000, 64 * 1024)],
                       attributes={"priority": 0})
        handle = engine.submit(trans)
        yield handle.wait()
        report["eTrans 64KB us"] = handle.latency_ns / 1e3

        # 4. Ask the arbiter for a credit reservation.
        domain = CreditDomain(env, budget=32)
        domain.register("in0")
        uni.arbiter.manage("demo-domain", domain)
        client = uni.arbiter_client("host0")
        grant = yield from client.reserve("demo-domain", "in0", 16)
        report["arbiter grant"] = (f"{grant['granted']} credits, "
                                   f"prio {grant['prio']}")

        # 5. Launch a kernel on the FAA.
        accel = next(iter(cluster.faa("faa0").accelerators.values()))
        accel.register("scale", lambda req: (250.0, req.meta["x"] * 10))
        packet = Packet(kind=PacketKind.IO_WR, channel=Channel.CXL_IO,
                        src=host.port.port_id,
                        dst=cluster.endpoint_id("faa0"),
                        nbytes=256,
                        meta={"accelerator": accel.name,
                              "kernel": "scale", "x": 4.2})
        start = env.now
        response = yield from host.port.request(packet)
        report["FAA kernel result"] = response.meta["result"]
        report["FAA round trip ns"] = env.now - start

    proc = env.process(demo())
    env.run(until=100_000_000, until_event=proc)

    print("\nresults:")
    for key, value in report.items():
        if isinstance(value, float):
            print(f"  {key:<24} {value:10.1f}")
        else:
            print(f"  {key:<24} {value}")
    print(f"\n{uni.describe()}")


if __name__ == "__main__":
    main()
