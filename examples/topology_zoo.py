"""Topology zoo: compile every declarative shape and print its inventory.

Run:  python examples/topology_zoo.py

Walks the whole of `repro.topo` — every committed descriptor shape and
one representative call of every generator — and for each:

1. resolves the spec string into a `TopologyDescriptor`;
2. compiles it into a live fabric (`compile_topology` wires switches,
   links and endpoints and lets the fabric manager fill every routing
   table);
3. verifies full endpoint-to-endpoint reachability through the
   installed tables (following every ECMP branch);
4. prints the ASCII inventory plus the reachability/ECMP stats.

The same spec strings work everywhere else in the system: `repro topo
show <spec>`, `--set topology=<spec>` on the xswitch experiment, and
the `topology` sweep axis.
"""

from repro.sim import Environment
from repro.topo import (
    compile_topology,
    ecmp_counts,
    resolve_topology,
    shape_names,
    verify_reachability,
)

# One representative call per generator, past the defaults where the
# interesting structure needs more than one unit.
GENERATOR_SPECS = [
    "star:hosts=2,devices=3",
    "chain:switches=4,hosts=2,devices=2",
    "fat_tree:pods=2,leaves=2,spines=2",
    "dragonfly:groups=3,routers=2",
]


def show(spec: str) -> None:
    fabric = compile_topology(resolve_topology(spec), Environment())
    reach = verify_reachability(fabric.topology)
    widths = sorted(set(ecmp_counts(fabric.topology).values()))
    print("=" * 64)
    print(f"spec: {spec}")
    print(fabric.describe())
    print(f"  reachable pairs: {reach['pairs']}, "
          f"max hops: {reach['max_hops']}, "
          f"ECMP widths: {widths}")


def main() -> None:
    print("committed shapes:", ", ".join(shape_names()))
    for name in shape_names():
        show(name)
    for spec in GENERATOR_SPECS:
        show(spec)


if __name__ == "__main__":
    main()
