"""Surviving a FAM chassis loss with erasure-coded far memory.

Run:  python examples/fabric_failover.py

Section 3, difference #5: FAM chassis are passive failure domains —
they fail independently of hosts and cannot run their own fault
tolerance.  This example protects a far-memory region across four
chassis (3 data + 1 parity), kills a chassis mid-workload, shows the
degraded-read latency cliff, and lets the central memory manager
rebuild onto spare capacity while the application keeps running.
"""

from repro import ClusterSpec, Environment, FamSpec, build_cluster
from repro.core import CentralMemoryManager
from repro.sim import SimRng, StatSeries

CHASSIS = 5
SHARD_BYTES = 32 * 1024
PHASE_OPS = 25


def main() -> None:
    env = Environment()
    fams = [FamSpec(name=f"fam{i}", capacity_bytes=1 << 26)
            for i in range(CHASSIS)]
    cluster = build_cluster(env, ClusterSpec(hosts=1, fams=fams))
    host = cluster.host(0)
    manager = CentralMemoryManager(env)
    for i in range(CHASSIS):
        manager.register_chassis(
            f"fam{i}",
            spare_bases=[host.remote_base(f"fam{i}") + (8 << 20)])
    region = manager.create_region(
        host, "dataset",
        [(f"fam{i}", host.remote_base(f"fam{i}")) for i in range(4)],
        shard_bytes=SHARD_BYTES, parity=1)
    phases = []
    # A hot set inside data shard 1 (the one we will kill): repeated
    # reads are cache-fast while healthy; the failure exposes the
    # reconstruction cost and the 3x fabric-read amplification.
    hot_offsets = [SHARD_BYTES + i * 64 for i in range(8)]

    def phase(label):
        stats = StatSeries(label)
        fha_reads_before = host.fha.remote_reads

        def ops():
            for i in range(PHASE_OPS):
                offset = hot_offsets[i % len(hot_offsets)]
                start = env.now
                yield from region.read(offset)
                stats.add(env.now - start)

        def fabric_reads():
            return host.fha.remote_reads - fha_reads_before

        return stats, ops, fabric_reads

    def workload():
        stats, ops, fabric_reads = phase("healthy")
        yield from ops()
        phases.append(("healthy (3+1 shards)", stats, fabric_reads()))

        affected = manager.chassis_failed("fam1")
        print(f"!! chassis fam1 failed — regions affected: {affected}")
        host.mem.flush()   # its cached lines are gone with it

        stats, ops, fabric_reads = phase("degraded")
        yield from ops()
        phases.append(("degraded (reconstruct on read)", stats,
                       fabric_reads()))

        start = env.now
        rebuilt = yield from manager.reconstruct("dataset")
        rebuild_us = (env.now - start) / 1e3
        print(f"-- manager rebuilt {rebuilt} shard(s) onto spare "
              f"capacity in {rebuild_us:.1f} us")
        host.mem.flush()

        stats, ops, fabric_reads = phase("recovered")
        yield from ops()
        phases.append(("recovered (fast path restored)", stats,
                       fabric_reads()))

    proc = env.process(workload())
    env.run(until=500_000_000_000, until_event=proc)

    print()
    print(f"{'phase':<34} {'mean read ns':>13} {'p99 ns':>10} "
          f"{'fabric reads':>13}")
    for label, stats, reads in phases:
        print(f"{label:<34} {stats.mean:>13.1f} {stats.p99:>10.1f} "
              f"{reads:>13}")
    print()
    print(manager.describe())


if __name__ == "__main__":
    main()
