"""The declarative experiment layer: registry, specs, and sweeps.

Run:  python examples/experiment_sweep.py

Every table in ``benchmarks/`` and every telemetry scenario is a named
experiment in :mod:`repro.experiments` — a typed parameter schema plus
a run function returning a JSON-able summary.  This example:

1. browses the registry (the API behind ``repro list``);
2. runs one experiment with overridden parameters (``repro bench``);
3. runs a small parameter sweep across two worker processes into a
   resumable directory (``repro sweep``), then reads the merged
   report — byte-identical at any worker count, because each point's
   seed derives from sha256(base_seed, index) and the report is
   assembled in point order.
"""

import json
import tempfile
from pathlib import Path

from repro.experiments import registry, run_summary
from repro.experiments.sweep import SweepSpec, run_sweep


def main() -> None:
    # 1. The registry: every bench table and telemetry scenario.
    rows = registry.describe()
    benches = [r for r in rows if r["kind"] == "bench"]
    scenarios = [r for r in rows if r["kind"] == "scenario"]
    print(f"registry: {len(benches)} bench experiments, "
          f"{len(scenarios)} telemetry scenarios")
    flit = registry.get("flit_rtt")
    print(f"  flit_rtt params: "
          + ", ".join(f"{name}={param.default}"
                      for name, param in sorted(flit.params.items())))

    # 2. One experiment, parameters overridden, summary as plain data.
    summary = run_summary("flit_rtt", max_hops=4, pings=6)
    print("\nflit_rtt with max_hops=4:")
    for row in summary["rows"]:
        print(f"  {row['hops']} hop(s): {row['rtt_ns']:7.1f} ns RTT")

    # 3. A sweep: one axis, two workers, resumable output directory.
    spec = SweepSpec.from_dict({
        "experiment": "pcie_interference",
        "sweep": {"device_service_ns": [200.0, 250.0, 300.0]},
        "params": {"hosts_list": [1, 4, 16], "writes_per_host": 60},
        "seed": 7,
    })
    with tempfile.TemporaryDirectory() as out_dir:
        run_sweep(spec, out_dir, workers=2, progress=print)
        report = json.loads(
            (Path(out_dir) / "sweep.json").read_text())
    print("\nadded one-way latency at 16 hosts, by device service time:")
    for point in report["points"]:
        service = point["params"]["device_service_ns"]
        added = point["outputs"]["summary"]["rows"][-1]["added_ns"]
        print(f"  service {service:5.1f} ns -> +{added:7.1f} ns")


if __name__ == "__main__":
    main()
