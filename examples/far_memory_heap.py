"""Far-memory KV store: watch the unified heap migrate hot objects.

Run:  python examples/far_memory_heap.py

A key-value store whose values overflow a deliberately small local
memory bin into fabric-attached memory.  The access pattern is
Zipf-skewed, so a few keys dominate.  With the DP#2 heap runtime on,
the profiler spots them and migrates them local; the example prints
the access-latency trajectory so you can watch it converge.
"""

from repro import ClusterSpec, Environment, UniFabric, build_cluster
from repro.mem import CacheConfig
from repro.sim import SimRng, StatSeries
from repro.workloads import KvStore

# Small host caches so *placement* (not caching) decides latency —
# the realistic regime when the hot set exceeds the LLC.
SMALL_CACHES = (
    CacheConfig(name="l1", size_bytes=4 * 1024, assoc=4,
                read_ns=5.4, write_ns=5.4),
    CacheConfig(name="l2", size_bytes=16 * 1024, assoc=8,
                read_ns=13.6, write_ns=12.5),
)

KEYS = 48
VALUE_BYTES = 8192
ACCESSES = 1200
LOCAL_BIN = 96 * 1024      # ~12 values fit locally


def main() -> None:
    env = Environment()
    cluster = build_cluster(env, ClusterSpec(hosts=1,
                                             cache_configs=SMALL_CACHES))
    uni = UniFabric(env, cluster, local_heap_bytes=LOCAL_BIN)
    heap = uni.heap("host0")
    runtime = uni.heap_runtime("host0")
    runtime.promote_threshold = 3.0
    runtime.interval_ns = 10_000.0
    runtime.start()

    store = KvStore(env, heap, value_bytes=VALUE_BYTES)
    rng = SimRng(11)
    windows = []

    def workload():
        # Load phase: cold keys first, so the hot tail lands remote.
        for k in range(KEYS):
            yield from store.put(f"key{k}")
        hot = [f"key{KEYS - 1 - i}" for i in range(5)]
        window = StatSeries("w")
        for access in range(ACCESSES):
            key = rng.choice(hot) if rng.bernoulli(0.9) \
                else f"key{rng.randint(0, KEYS - 1)}"
            start = env.now
            yield from store.get(key)
            window.add(env.now - start)
            if (access + 1) % 100 == 0:
                windows.append((access + 1, window.mean))
                window = StatSeries("w")
            yield env.timeout(100.0)

    proc = env.process(workload())
    env.run(until=1_000_000_000, until_event=proc)

    print(f"KV store: {KEYS} x {VALUE_BYTES}B values, "
          f"{LOCAL_BIN >> 10}KiB local bin, 90% of gets on 5 hot keys")
    print(f"{'accesses':>10} {'mean get us':>12}")
    for count, mean in windows:
        bar = "#" * int(mean / 2_000)
        print(f"{count:>10} {mean / 1e3:>12.1f}  {bar}")
    print(f"\nheap runtime: {runtime.promotions} promotions, "
          f"{runtime.demotions} demotions")
    tiers = {}
    for obj in heap.live_objects():
        tiers[obj.bin.tier] = tiers.get(obj.bin.tier, 0) + 1
    print(f"final object placement: {tiers}")
    print(f"hit rate: {store.stats.hit_rate:.0%} over "
          f"{store.stats.gets} gets")


if __name__ == "__main__":
    main()
