"""Extension experiment E3: HDM interleaving across FAM chassis.

CXL hosts can interleave a host-managed device-memory region across
several Type-3 devices, aggregating their bandwidth — the natural
answer to the paper's motivation #1 (stagnant per-core memory
bandwidth).  The builder lives in
:mod:`repro.experiments.defs.fabric` (experiment ``hdm_interleave``;
the bench keeps its historical file name).
"""

from __future__ import annotations

import sys
from typing import Dict

from repro.experiments import render, run_summary

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import memoize


@memoize
def collect() -> Dict[int, float]:
    return {int(ways): gbps for ways, gbps
            in run_summary("hdm_interleave")["ways"].items()}


def test_e3_two_way_beats_single_chassis(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    assert results[2] > 1.2 * results[1]
    benchmark.extra_info["gain_2way"] = round(results[2] / results[1], 2)


def test_e3_scaling_saturates_at_host_port(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    # 4-way is never worse than 2-way, but the marginal gain shrinks:
    # the shared host link/port becomes the bottleneck.
    assert results[4] >= results[2] * 0.95
    gain_12 = results[2] / results[1]
    gain_24 = results[4] / results[2]
    assert gain_24 < gain_12


def main() -> None:
    results = collect()
    render("hdm_interleave",
           summary={"ways": {str(k): v for k, v in results.items()}})


if __name__ == "__main__":
    main()
