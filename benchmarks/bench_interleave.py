"""Extension experiment E3: HDM interleaving across FAM chassis.

CXL hosts can interleave a host-managed device-memory region across
several Type-3 devices, aggregating their bandwidth — the natural
answer to the paper's motivation #1 (stagnant per-core memory
bandwidth).  We stream a large buffer through 1/2/4-way stripes and
report effective bandwidth; the curve saturates when the host's own
port becomes the bottleneck, which is itself the honest lesson.
"""

from __future__ import annotations

import sys
from typing import Dict

from repro.infra import ClusterSpec, FamSpec, build_cluster
from repro.sim import Environment

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import memoize, print_table, run_proc

SCAN_BYTES = 256 * 1024
CHUNK = 16 * 1024


def stream(ways: int) -> float:
    """Scan SCAN_BYTES through a `ways`-way stripe; returns GB/s."""
    env = Environment()
    cluster = build_cluster(env, ClusterSpec(
        hosts=1, map_all_fams=False,
        fams=[FamSpec(name=f"fam{i}", capacity_bytes=1 << 26)
              for i in range(4)]))
    host = cluster.host(0)
    targets = [(f"fam{i}", cluster.endpoint_id(f"fam{i}"))
               for i in range(ways)]
    region = host.map_interleaved("stripe", targets, size=32 << 20)

    def worker(slice_index, slices):
        offset = slice_index * CHUNK
        while offset < SCAN_BYTES:
            yield from host.mem.access(region.start + offset, False,
                                       CHUNK)
            offset += slices * CHUNK

    def go():
        start = env.now
        slices = 8   # a pipelined stream: 8 chunks in flight
        workers = [env.process(worker(i, slices)) for i in range(slices)]
        yield env.all_of(workers)
        return env.now - start

    elapsed_ns = run_proc(env, go(), horizon=500_000_000_000)
    return SCAN_BYTES / elapsed_ns   # bytes/ns == GB/s


@memoize
def collect() -> Dict[int, float]:
    return {ways: stream(ways) for ways in (1, 2, 4)}


def test_e3_two_way_beats_single_chassis(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    assert results[2] > 1.2 * results[1]
    benchmark.extra_info["gain_2way"] = round(results[2] / results[1], 2)


def test_e3_scaling_saturates_at_host_port(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    # 4-way is never worse than 2-way, but the marginal gain shrinks:
    # the shared host link/port becomes the bottleneck.
    assert results[4] >= results[2] * 0.95
    gain_12 = results[2] / results[1]
    gain_24 = results[4] / results[2]
    assert gain_24 < gain_12


def main() -> None:
    results = collect()
    rows = [[f"{ways}-way", gbps, gbps / results[1]]
            for ways, gbps in results.items()]
    print_table(
        f"E3 (extension): {SCAN_BYTES >> 10}KiB stream over HDM "
        "interleaving",
        ["stripe", "GB/s", "vs 1-way"], rows)


if __name__ == "__main__":
    main()
