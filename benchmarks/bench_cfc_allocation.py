"""Experiment C5: exponential ramp-up credit allocation starves bursts.

Paper (section 3): "The de facto scheme is an exponential ramp-up
approach based on port bandwidth utilization.  A consistently
heavily-used port would take more credits, leaving little room for
other contending ports ... this would create interference and stall
transactions from other ports."

The builder lives in :mod:`repro.experiments.defs.cfc` (experiment
``cfc_allocation``); this script is its benchmark/CLI wrapper.
"""

from __future__ import annotations

import sys
from typing import Dict

from repro.experiments import render, run_summary

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import memoize


@memoize
def summary() -> dict:
    return run_summary("cfc_allocation")


def collect() -> Dict[str, float]:
    return summary()["policies"]


def test_c5_rampup_starves_bursty_flow(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    assert results["ramp-up"] > 2.0 * results["static"]
    benchmark.extra_info.update(
        {k: round(v, 1) for k, v in results.items()})


def test_c5_reservation_beats_static_for_reserved_flow(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    assert results["reservation"] <= results["static"] * 1.1


def main() -> None:
    render("cfc_allocation", summary=summary())


if __name__ == "__main__":
    main()
