"""Experiment C5: exponential ramp-up credit allocation starves bursts.

Paper (section 3): "The de facto scheme is an exponential ramp-up
approach based on port bandwidth utilization.  A consistently
heavily-used port would take more credits, leaving little room for
other contending ports ... this would create interference and stall
transactions from other ports."

A hot flow hammers a shared egress credit domain while a quiet flow
sleeps, then bursts.  Under :class:`RampUpPolicy` the quiet flow has
decayed to the floor and its burst stalls across whole rebalance
periods; a static split caps the hot flow; the DP#4 reservation policy
gives the bursty flow a guaranteed floor the moment it reserves.
"""

from __future__ import annotations

import sys
from typing import Dict

from repro.pcie import (
    CreditDomain,
    RampUpPolicy,
    ReservationPolicy,
    StaticEqualPolicy,
)
from repro.sim import Environment

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import memoize, print_table, run_proc

BUDGET = 64
BURST = 48
SERVICE_NS = 10.0      # time one credit is held per flit
WARMUP_NS = 5_000.0


def burst_completion(policy_name: str) -> float:
    env = Environment()
    if policy_name == "ramp-up":
        policy = RampUpPolicy()
    elif policy_name == "static":
        policy = StaticEqualPolicy()
    else:
        policy = ReservationPolicy()
    domain = CreditDomain(env, budget=BUDGET, policy=policy,
                          rebalance_ns=500.0)
    domain.register("hot")
    domain.register("bursty")
    if policy_name == "reservation":
        policy.reserve("bursty", BUDGET // 2)
        domain.rebalance_now()
    domain.start()

    def serve_one(flow):
        yield env.timeout(SERVICE_NS)
        domain.release(flow)

    def hot_flow():
        # A pipelined producer: keeps every granted credit occupied.
        while True:
            yield domain.acquire("hot")
            env.process(serve_one("hot"))

    def bursty_flow():
        yield env.timeout(WARMUP_NS)    # long idle: ramp-up decays it
        start = env.now
        services = []
        for _ in range(BURST):
            yield domain.acquire("bursty")
            services.append(env.process(serve_one("bursty")))
        yield env.all_of(services)
        return env.now - start

    env.process(hot_flow(), name="hot")
    return run_proc(env, bursty_flow(), horizon=10_000_000)


@memoize
def collect() -> Dict[str, float]:
    return {name: burst_completion(name)
            for name in ("ramp-up", "static", "reservation")}


def test_c5_rampup_starves_bursty_flow(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    assert results["ramp-up"] > 2.0 * results["static"]
    benchmark.extra_info.update(
        {k: round(v, 1) for k, v in results.items()})


def test_c5_reservation_beats_static_for_reserved_flow(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    assert results["reservation"] <= results["static"] * 1.1


def main() -> None:
    results = collect()
    # Ideal: the burst pipelines over a fair half of the budget.
    ideal = -(-BURST // (BUDGET // 2)) * SERVICE_NS
    rows = [[name, value, value / ideal]
            for name, value in results.items()]
    rows.append(["(ideal half-budget)", ideal, 1.0])
    print_table("C5: burst completion under credit-allocation policies",
                ["policy", "burst ns", "vs ideal"], rows)


if __name__ == "__main__":
    main()
