"""Experiment S3: difference #4 — fast context switching to FAAs.

The paper: launching a kernel on an Ethernet-attached accelerator needs
a communication channel, a custom networking stack, and explicit
context marshalling; a memory fabric makes the FAA behave like a local
device.  The builder lives in :mod:`repro.experiments.defs.movement`
(experiment ``context_switch``); this script is its benchmark/CLI
wrapper.
"""

from __future__ import annotations

import sys
from typing import Dict

from repro.experiments import render, run_summary

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import memoize


@memoize
def collect() -> Dict[str, float]:
    return run_summary("context_switch")["paths"]


def test_s3_fabric_launch_much_cheaper(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    nic = results["comm-fabric (NIC)"]
    faa = results["fabric (FAA call)"]
    assert faa < nic / 2
    benchmark.extra_info["nic_ns"] = round(nic, 1)
    benchmark.extra_info["faa_ns"] = round(faa, 1)


def test_s3_scalable_function_comparable_to_raw_call(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    fn = results["fabric (scalable fn)"]
    faa = results["fabric (FAA call)"]
    assert fn < 2 * faa


def main() -> None:
    render("context_switch", summary={"paths": collect()})


if __name__ == "__main__":
    main()
