"""Experiment S3: difference #4 — fast context switching to FAAs.

The paper: launching a kernel on an Ethernet-attached accelerator needs
a communication channel, a custom networking stack, and explicit
context marshalling; a memory fabric makes the FAA behave like a local
device — the context is a few loads/stores away and the kernel launch
is one fabric round trip.

We measure kernel-launch latency (excluding the kernel itself) three
ways: over the comm-fabric baseline, over the fabric via an
accelerator-chassis call, and over the fabric via a scalable-function
message (the DP#3 hardware template).
"""

from __future__ import annotations

import sys
from typing import Dict

from repro.baselines import CommFabricChannel
from repro.core import FunctionChassis, HandlerResult, ScalableFunction
from repro.fabric import Channel, Packet, PacketKind
from repro.infra import ClusterSpec, FaaSpec, build_cluster
from repro.pcie import FabricManager, PortRole, Topology
from repro.sim import Environment

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import memoize, print_table, run_proc

KERNEL_NS = 0.0          # measure pure launch cost
CONTEXT_BYTES = 4096     # registers + descriptors shipped per launch
LAUNCHES = 20


def comm_fabric_launch() -> float:
    env = Environment()
    nic = CommFabricChannel(env)

    def go():
        total = 0.0
        for _ in range(LAUNCHES):
            total += yield from nic.kernel_launch(CONTEXT_BYTES,
                                                  KERNEL_NS)
        return total / LAUNCHES

    return run_proc(env, go())


def fabric_accelerator_launch() -> float:
    env = Environment()
    cluster = build_cluster(env, ClusterSpec(
        hosts=1, faas=[FaaSpec(name="faa0")]))
    accel = next(iter(cluster.faa("faa0").accelerators.values()))
    accel.register("kernel", lambda req: (KERNEL_NS, None))
    host = cluster.host(0)
    dst = cluster.endpoint_id("faa0")

    def go():
        start = env.now
        for _ in range(LAUNCHES):
            # The context rides as the packet payload: plain stores.
            packet = Packet(kind=PacketKind.IO_WR, channel=Channel.CXL_IO,
                            src=host.port.port_id, dst=dst,
                            nbytes=CONTEXT_BYTES,
                            meta={"kernel": "kernel"})
            yield from host.port.request(packet)
        return (env.now - start) / LAUNCHES

    return run_proc(env, go())


def scalable_function_launch() -> float:
    env = Environment()
    topo = Topology(env)
    topo.add_switch("sw0")
    topo.add_endpoint("host0")
    host_port = topo.connect_endpoint("sw0", "host0",
                                      role=PortRole.UPSTREAM)
    topo.add_endpoint("faa0")
    faa_port = topo.connect_endpoint("sw0", "faa0")
    FabricManager(topo).configure()
    function = ScalableFunction("kernel").on(
        "call", lambda state, msg: HandlerResult(compute_ns=KERNEL_NS))
    FunctionChassis(env, faa_port, [function])
    dst = topo.endpoints["faa0"].global_id

    def go():
        start = env.now
        for _ in range(LAUNCHES):
            packet = Packet(kind=PacketKind.IO_WR, channel=Channel.CXL_IO,
                            src=host_port.port_id, dst=dst,
                            nbytes=CONTEXT_BYTES,
                            meta={"function": "kernel"})
            yield from host_port.request(packet)
        return (env.now - start) / LAUNCHES

    return run_proc(env, go())


@memoize
def collect() -> Dict[str, float]:
    return {
        "comm-fabric (NIC)": comm_fabric_launch(),
        "fabric (FAA call)": fabric_accelerator_launch(),
        "fabric (scalable fn)": scalable_function_launch(),
    }


def test_s3_fabric_launch_much_cheaper(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    nic = results["comm-fabric (NIC)"]
    faa = results["fabric (FAA call)"]
    assert faa < nic / 2
    benchmark.extra_info["nic_ns"] = round(nic, 1)
    benchmark.extra_info["faa_ns"] = round(faa, 1)


def test_s3_scalable_function_comparable_to_raw_call(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    fn = results["fabric (scalable fn)"]
    faa = results["fabric (FAA call)"]
    assert fn < 2 * faa


def main() -> None:
    results = collect()
    nic = results["comm-fabric (NIC)"]
    rows = [[mode, value, nic / value]
            for mode, value in results.items()]
    print_table(f"S3: kernel launch latency ({CONTEXT_BYTES}B context, "
                "kernel excluded)",
                ["path", "launch ns", "speedup"], rows)


if __name__ == "__main__":
    main()
