"""Experiment CS: the section 5 case study — MIMO baseband over UniFabric.

The paper walks through porting a software massive-MIMO engine (Agora)
onto UniFabric: move the data objects (symbol frames, channel-state
matrices) into the unified heap, pick a backend execution engine per
kernel, encapsulate kernels as idempotent tasks / cooperative
functions, and replace async communication with elastic transactions.

We run the *real* uplink DSP once (numpy) to get the per-kernel FLOP
counts and verify bit-exact decoding, then evaluate three deployments
of the same pipeline on the simulated rack:

* **all-local** — frames land in host DRAM, kernels run on the host
  core (the monolithic appliance the paper wants to disaggregate);
* **naive-remote** — frames live in fabric memory; every kernel does
  synchronous remote loads/stores (porting without rethinking layout);
* **unifabric** — frames live in the unified heap; an elastic
  transaction stages each frame locally while the previous frame
  computes; kernels run as FAA scalable functions (modest accelerator
  speedup), following the case study's steps.
"""

from __future__ import annotations

import sys
from typing import Dict, List

import numpy as np

from repro.core import ETrans, MovementOrchestrator
from repro.infra import ClusterSpec, FaaSpec, build_cluster
from repro.sim import Environment
from repro.workloads.mimo import (
    KERNEL_ORDER,
    MimoChannel,
    MimoConfig,
    UplinkPipeline,
    flops_to_ns,
    make_frame,
)

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import memoize, print_table, run_proc

FRAMES = 8
FAA_SPEEDUP = 4.0        # an FAA runs a DSP kernel ~4x a host core
CHUNK = 4096


def stage_bytes(config: MimoConfig) -> Dict[str, tuple]:
    """(input_bytes, output_bytes) per kernel."""
    s, a, u, d = (config.subcarriers, config.antennas, config.users,
                  config.data_symbols)
    frame = config.frame_bytes
    h = s * a * u * 16
    eq = s * u * d * 16
    coded_bytes = (2 * s * u * d) // 8
    return {
        "fft": (frame, frame),
        "channel_estimate": (s * a * u * 16, h),
        "equalize": (frame + h, eq),
        "demodulate": (eq, coded_bytes),
        "decode": (coded_bytes, coded_bytes // 3),
    }


def kernel_flops(config: MimoConfig) -> Dict[str, float]:
    """Run the real DSP once; returns per-kernel FLOPs (and checks BER)."""
    channel = MimoChannel(config)
    pipeline = UplinkPipeline(config)
    rng = np.random.default_rng(0)
    payload = rng.integers(0, 2,
                           size=config.bits_per_frame // 3).astype(np.int8)
    frame = make_frame(config, channel, payload, pipeline.pilot)
    decoded, flops = pipeline.process(frame)
    assert np.array_equal(decoded[:payload.size], payload), \
        "uplink DSP must decode bit-exactly at this SNR"
    return flops


def run_deployment(mode: str, config: MimoConfig,
                   flops: Dict[str, float]) -> float:
    """Total time to process FRAMES frames; returns per-frame ns."""
    env = Environment()
    cluster = build_cluster(env, ClusterSpec(
        hosts=1, faas=[FaaSpec(name="faa0")]))
    host = cluster.host(0)
    engine = MovementOrchestrator(env).attach_host(host)
    remote_base = host.remote_base("fam0")
    local_base = 8 << 20
    sizes = stage_bytes(config)
    speedup = FAA_SPEEDUP if mode == "unifabric" else 1.0

    def touch(base, nbytes, is_write):
        offset = 0
        while offset < nbytes:
            chunk = min(CHUNK, nbytes - offset)
            yield from host.mem.access(base + offset, is_write, chunk)
            offset += chunk

    def process_frame(data_base):
        scratch = data_base + (2 << 20)
        for kernel in KERNEL_ORDER:
            in_bytes, out_bytes = sizes[kernel]
            yield from touch(data_base, in_bytes, False)
            yield env.timeout(flops_to_ns(flops[kernel], speedup))
            yield from touch(scratch, out_bytes, True)

    def go():
        start = env.now
        staged = None
        for frame_index in range(FRAMES):
            frame_offset = frame_index * (4 << 20)
            if mode == "all-local":
                yield from process_frame(local_base + frame_offset)
            elif mode == "naive-remote":
                yield from process_frame(remote_base + frame_offset)
            else:
                # Stage the incoming frame locally via an elastic
                # transaction, then compute against local memory.
                trans = ETrans(
                    src_list=[(remote_base + frame_offset,
                               config.frame_bytes)],
                    dst_list=[(local_base + frame_offset,
                               config.frame_bytes)],
                    attributes={"priority": 0})
                handle = engine.submit(trans)
                yield handle.wait()
                yield from process_frame(local_base + frame_offset)
        return (env.now - start) / FRAMES

    return run_proc(env, go(), horizon=500_000_000_000)


@memoize
def collect() -> Dict[str, float]:
    config = MimoConfig(antennas=16, users=4, subcarriers=64,
                        data_symbols=4, snr_db=25.0)
    flops = kernel_flops(config)
    return {mode: run_deployment(mode, config, flops)
            for mode in ("all-local", "naive-remote", "unifabric")}


def test_cs_naive_remote_is_the_worst(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    assert results["naive-remote"] > results["all-local"]
    assert results["naive-remote"] > results["unifabric"]
    benchmark.extra_info.update(
        {k: round(v / 1e3, 1) for k, v in results.items()})


def test_cs_unifabric_close_to_or_better_than_local(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    # Staging + FAA speedup: within 1.5x of the monolithic appliance
    # (and usually ahead thanks to the accelerator).
    assert results["unifabric"] < 1.5 * results["all-local"]
    benchmark.extra_info["vs_local"] = round(
        results["unifabric"] / results["all-local"], 2)


def main() -> None:
    results = collect()
    local = results["all-local"]
    rows = [[mode, value / 1e3, local / value]
            for mode, value in results.items()]
    print_table(
        f"CS: MIMO uplink per-frame time ({FRAMES} frames, 16 ant x "
        "4 users x 64 subcarriers)",
        ["deployment", "us/frame", "vs all-local"], rows)


if __name__ == "__main__":
    main()
