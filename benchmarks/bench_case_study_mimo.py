"""Experiment CS: the section 5 case study — MIMO baseband over UniFabric.

The paper walks through porting a software massive-MIMO engine (Agora)
onto UniFabric.  We run the *real* uplink DSP once (numpy) to get the
per-kernel FLOP counts and verify bit-exact decoding, then evaluate
three deployments of the same pipeline on the simulated rack
(all-local, naive-remote, unifabric).  The builder lives in
:mod:`repro.experiments.defs.mimo` (experiment ``case_study_mimo``);
this script is its benchmark/CLI wrapper.
"""

from __future__ import annotations

import sys
from typing import Dict

from repro.experiments import render, run_summary

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import memoize


@memoize
def collect() -> Dict[str, float]:
    return run_summary("case_study_mimo")["modes"]


def test_cs_naive_remote_is_the_worst(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    assert results["naive-remote"] > results["all-local"]
    assert results["naive-remote"] > results["unifabric"]
    benchmark.extra_info.update(
        {k: round(v / 1e3, 1) for k, v in results.items()})


def test_cs_unifabric_close_to_or_better_than_local(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    # Staging + FAA speedup: within 1.5x of the monolithic appliance
    # (and usually ahead thanks to the accelerator).
    assert results["unifabric"] < 1.5 * results["all-local"]
    benchmark.extra_info["vs_local"] = round(
        results["unifabric"] / results["all-local"], 2)


def main() -> None:
    render("case_study_mimo", summary={"modes": collect()})


if __name__ == "__main__":
    main()
