"""Experiment A4: DP#4 ablation — the central arbiter, end to end.

The full in-band path: a latency-critical client asks the
:class:`FabricArbiter` (over the dedicated control lane) for a credit
reservation at the contended switch egress; the arbiter installs a
:class:`ReservationPolicy` target and hands back a priority level the
client stamps on its packets.  Compared against vanilla CFC
(exponential ramp-up credits + credit-agnostic FIFO egress) under a
bulk flood from a sibling host.
"""

from __future__ import annotations

import sys
from typing import Dict

from repro.core import UniFabric
from repro.fabric import Channel, Packet, PacketKind
from repro.infra import ClusterSpec, build_cluster
from repro.pcie import CreditDomain, RampUpPolicy
from repro.sim import Environment, StatSeries

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import memoize, print_table, run_proc

CRITICAL_BURSTS = 10
BURST_SIZE = 8
FLOOD_WRITES = 1200
FLOOD_WORKERS = 48
EGRESS_CREDIT_BUDGET = 48


def _egress_index(cluster, peer: str) -> int:
    switch = cluster.topology.switches["sw0"]
    for index, port in switch.ports.items():
        if port.peer == peer:
            return index
    raise KeyError(peer)


def run_case(mode: str) -> StatSeries:
    env = Environment()
    scheduler = "priority" if mode == "arbiter" else "fifo"
    # Fast media + a narrow x4 chassis link: the contended resource is
    # the switch egress toward the FAM (the paper's C5/C6 are fabric
    # effects), not the device internals.
    from repro import params
    from repro.infra import FamSpec
    cluster = build_cluster(env, ClusterSpec(
        hosts=2, scheduler=scheduler, control_lane=True,
        fams=[FamSpec(name="fam0", read_extra_ns=0.0,
                      write_extra_ns=0.0, modules=8,
                      link_params=params.LinkParams(lanes=4))]))
    switch = cluster.topology.switches["sw0"]
    egress = _egress_index(cluster, "fam0")
    domain = CreditDomain(env, budget=EGRESS_CREDIT_BUDGET,
                          policy=RampUpPolicy(), rebalance_ns=500.0)
    switch.add_credit_domain(egress, domain)

    uni = UniFabric(env, cluster, with_arbiter=mode == "arbiter")
    if mode == "arbiter":
        uni.arbiter.manage("sw0:fam0", domain)
    else:
        domain.start()

    host0 = cluster.host(0)
    host1 = cluster.hosts["host1"]
    dst = cluster.endpoint_id("fam0")
    stats = StatSeries(mode)
    # Flows are named after switch ingress ports ("in<N>").
    critical_flow = f"in{_egress_index(cluster, 'host0')}"

    def one_read(prio):
        packet = Packet(kind=PacketKind.MEM_RD,
                        channel=Channel.CXL_MEM,
                        src=host0.port.port_id, dst=dst, nbytes=64,
                        meta={"prio": prio})
        yield from host0.port.request(packet)

    def critical():
        prio = 0
        if mode == "arbiter":
            client = uni.arbiter_client("host0")
            grant = yield from client.reserve(
                "sw0:fam0", critical_flow, EGRESS_CREDIT_BUDGET // 2)
            prio = grant["prio"]
        else:
            yield env.timeout(0)
        yield env.timeout(5_000.0)   # let the flood ramp (C5 decay)
        for _ in range(CRITICAL_BURSTS):
            start = env.now
            burst = [env.process(one_read(prio))
                     for _ in range(BURST_SIZE)]
            yield env.all_of(burst)
            stats.add(env.now - start, time=env.now)
            yield env.timeout(2_000.0)

    # The flood writes to modules 1..7; the critical reads hit module
    # 0, so the *shared* resource is the fabric egress, not one DRAM
    # bank inside the chassis.
    module_capacity = cluster.fam("fam0").modules[0].capacity_bytes

    def flood_worker(worker, count):
        addr = (1 + worker % 7) * module_capacity + worker * 8192
        for _ in range(count):
            packet = Packet(kind=PacketKind.MEM_WR,
                            channel=Channel.CXL_MEM,
                            src=host1.port.port_id, dst=dst, addr=addr,
                            nbytes=4096, meta={"prio": 0})
            yield from host1.port.request(packet)

    for worker in range(FLOOD_WORKERS):  # saturate the narrow link
        env.process(flood_worker(worker,
                                 FLOOD_WRITES // FLOOD_WORKERS))
    run_proc(env, critical(), horizon=50_000_000_000)
    return stats


@memoize
def collect() -> Dict[str, StatSeries]:
    return {"vanilla-cfc": run_case("vanilla"),
            "arbiter": run_case("arbiter")}


def test_a4_arbiter_protects_reserved_flow(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    assert results["arbiter"].mean < results["vanilla-cfc"].mean
    benchmark.extra_info["vanilla_ns"] = round(
        results["vanilla-cfc"].mean, 1)
    benchmark.extra_info["arbiter_ns"] = round(results["arbiter"].mean, 1)


def test_a4_arbiter_tail_is_tighter(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    assert results["arbiter"].p99 <= results["vanilla-cfc"].p99


def main() -> None:
    results = collect()
    rows = [[mode, stats.mean, stats.p99]
            for mode, stats in results.items()]
    print_table(f"A4 (DP#4): {BURST_SIZE}-read burst completion vs a "
                "4KB-write flood at one egress",
                ["mode", "mean burst ns", "p99 ns"], rows)


if __name__ == "__main__":
    main()
