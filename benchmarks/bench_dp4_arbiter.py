"""Experiment A4: DP#4 ablation — the central arbiter, end to end.

The full in-band path: a latency-critical client asks the
:class:`FabricArbiter` (over the dedicated control lane) for a credit
reservation at the contended switch egress; the arbiter installs a
:class:`ReservationPolicy` target and hands back a priority level the
client stamps on its packets.  The builder lives in
:mod:`repro.experiments.defs.cfc` (experiment ``dp4_arbiter``); this
script is its benchmark/CLI wrapper.
"""

from __future__ import annotations

import sys
from typing import Dict

from repro.experiments import render, run_summary

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import memoize


@memoize
def collect() -> Dict[str, dict]:
    return run_summary("dp4_arbiter")["modes"]


def test_a4_arbiter_protects_reserved_flow(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    assert results["arbiter"]["mean_ns"] < \
        results["vanilla-cfc"]["mean_ns"]
    benchmark.extra_info["vanilla_ns"] = round(
        results["vanilla-cfc"]["mean_ns"], 1)
    benchmark.extra_info["arbiter_ns"] = round(
        results["arbiter"]["mean_ns"], 1)


def test_a4_arbiter_tail_is_tighter(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    assert results["arbiter"]["p99_ns"] <= \
        results["vanilla-cfc"]["p99_ns"]


def main() -> None:
    render("dp4_arbiter", summary={"modes": collect()})


if __name__ == "__main__":
    main()
