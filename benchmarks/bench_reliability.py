"""Extension experiment E1: resource-frugal fault tolerance for FAM.

Not a table in the paper, but its section 3 (difference #5) argues the
point this bench quantifies — passive failure domains need a
fault-tolerance scheme that is "resource-frugal and impacts the
application performance little", citing Carbink's erasure-coding
recipe.  We measure, over the simulated rack:

* the steady-state overhead of parity protection (write amplification);
* the degraded-read latency cliff after a chassis loss;
* reconstruction restoring the fast path.
"""

from __future__ import annotations

import sys
from typing import Dict

from repro.core import CentralMemoryManager
from repro.infra import ClusterSpec, FamSpec, build_cluster
from repro.sim import Environment, StatSeries

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import memoize, print_table, run_proc

OPS = 30
SHARD_BYTES = 64 * 1024


def build(parity: int):
    env = Environment()
    fams = [FamSpec(name=f"fam{i}", capacity_bytes=1 << 26)
            for i in range(5)]
    cluster = build_cluster(env, ClusterSpec(hosts=1, fams=fams))
    host = cluster.host(0)
    manager = CentralMemoryManager(env)
    for i in range(5):
        manager.register_chassis(
            f"fam{i}",
            spare_bases=[host.remote_base(f"fam{i}") + (8 << 20)])
    shards = [(f"fam{i}", host.remote_base(f"fam{i}"))
              for i in range(2 + parity)]
    region = manager.create_region(host, "r0", shards,
                                   shard_bytes=SHARD_BYTES,
                                   parity=parity)
    return env, host, manager, region


def measure(parity: int) -> Dict[str, float]:
    env, host, manager, region = build(parity)
    healthy_reads = StatSeries("healthy")
    writes = StatSeries("writes")
    degraded_reads = StatSeries("degraded")

    def go():
        for i in range(OPS):
            addr = (i * 640) % SHARD_BYTES
            start = env.now
            yield from region.write(addr)
            writes.add(env.now - start)
            start = env.now
            yield from region.read(addr)
            healthy_reads.add(env.now - start)
        result = {"write_ns": writes.mean,
                  "read_ns": healthy_reads.mean}
        if parity > 0:
            manager.chassis_failed("fam0")
            for i in range(OPS):
                addr = (i * 640) % SHARD_BYTES
                start = env.now
                yield from region.read(addr)
                degraded_reads.add(env.now - start)
            result["degraded_read_ns"] = degraded_reads.mean
            start = env.now
            yield from manager.reconstruct("r0")
            result["rebuild_us"] = (env.now - start) / 1e3
            start = env.now
            yield from region.read(0)
            result["post_rebuild_read_ns"] = env.now - start
        return result

    return run_proc(env, go(), horizon=500_000_000_000)


@memoize
def collect() -> Dict[int, Dict[str, float]]:
    return {parity: measure(parity) for parity in (0, 1, 2)}


def test_e1_parity_write_amplification_bounded(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    unprotected = results[0]["write_ns"]
    single = results[1]["write_ns"]
    double = results[2]["write_ns"]
    # Each parity shard adds one RMW: roughly linear, not explosive.
    assert unprotected < single < double
    assert double < 4.0 * unprotected
    benchmark.extra_info["write_amp_p1"] = round(single / unprotected, 2)


def test_e1_reads_unaffected_by_protection(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    # The frugal part: healthy reads cost the same regardless of code.
    assert results[1]["read_ns"] < 1.2 * results[0]["read_ns"]


def test_e1_degraded_reads_pay_reconstruction(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    protected = results[1]
    assert protected["degraded_read_ns"] > protected["read_ns"]
    # Reconstruction restores the fast path.
    assert protected["post_rebuild_read_ns"] < \
        protected["degraded_read_ns"]
    benchmark.extra_info["degraded_ns"] = round(
        protected["degraded_read_ns"], 1)


def main() -> None:
    results = collect()
    rows = []
    for parity, r in results.items():
        rows.append([f"2+{parity}", r["write_ns"], r["read_ns"],
                     r.get("degraded_read_ns", "-"),
                     r.get("rebuild_us", "-")])
    print_table("E1 (extension): erasure-coded FAM regions "
                f"({SHARD_BYTES >> 10}KiB shards)",
                ["shards", "write ns", "read ns", "degraded ns",
                 "rebuild us"], rows)


if __name__ == "__main__":
    main()
