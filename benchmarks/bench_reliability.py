"""Extension experiment E1: resource-frugal fault tolerance for FAM.

Not a table in the paper, but its section 3 (difference #5) argues the
point this bench quantifies — passive failure domains need a
fault-tolerance scheme that is "resource-frugal and impacts the
application performance little", citing Carbink's erasure-coding
recipe.  The builder lives in :mod:`repro.experiments.defs.memory`
(experiment ``reliability``); this script is its benchmark/CLI wrapper.
"""

from __future__ import annotations

import sys
from typing import Dict

from repro.experiments import render, run_summary

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import memoize


@memoize
def collect() -> Dict[int, Dict[str, float]]:
    raw = run_summary("reliability")["parity"]
    return {int(parity): row for parity, row in raw.items()}


def test_e1_parity_write_amplification_bounded(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    unprotected = results[0]["write_ns"]
    single = results[1]["write_ns"]
    double = results[2]["write_ns"]
    # Each parity shard adds one RMW: roughly linear, not explosive.
    assert unprotected < single < double
    assert double < 4.0 * unprotected
    benchmark.extra_info["write_amp_p1"] = round(single / unprotected, 2)


def test_e1_reads_unaffected_by_protection(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    # The frugal part: healthy reads cost the same regardless of code.
    assert results[1]["read_ns"] < 1.2 * results[0]["read_ns"]


def test_e1_degraded_reads_pay_reconstruction(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    protected = results[1]
    assert protected["degraded_read_ns"] > protected["read_ns"]
    # Reconstruction restores the fast path.
    assert protected["post_rebuild_read_ns"] < \
        protected["degraded_read_ns"]
    benchmark.extra_info["degraded_ns"] = round(
        protected["degraded_read_ns"], 1)


def main() -> None:
    render("reliability", summary={
        "parity": {str(parity): row for parity, row in collect().items()}})


if __name__ == "__main__":
    main()
