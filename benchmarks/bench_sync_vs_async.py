"""Experiment S1: difference #1 — synchronous loads vs async DMA.

The paper's first difference: a memory fabric serves loads/stores
synchronously from the memory hierarchy, while a communication fabric
works in submission/completion rounds with stack, descriptor, and
interrupt taxes.  We sweep transfer size and find the crossover: tiny
transfers are dominated by the comm-fabric's fixed costs (the fabric
wins by an order of magnitude at 64B); at large sizes the DMA engine's
streaming bandwidth amortizes its taxes and the gap closes.
"""

from __future__ import annotations

import sys
from typing import Dict, List

from repro.baselines import CommFabricChannel
from repro.infra import ClusterSpec, build_cluster
from repro.sim import Environment

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import memoize, print_table, run_proc

SIZES = (64, 256, 1024, 4096, 16 * 1024, 64 * 1024)


def fabric_latency(nbytes: int) -> float:
    env = Environment()
    cluster = build_cluster(env, ClusterSpec(hosts=1))
    host = cluster.host(0)
    base = host.remote_base("fam0")

    def go():
        start = env.now
        yield from host.mem.access(base + 0x100000, False, nbytes)
        return env.now - start

    return run_proc(env, go())


def dma_latency(nbytes: int) -> float:
    env = Environment()
    nic = CommFabricChannel(env)

    def go():
        return (yield from nic.remote_read(nbytes))

    return run_proc(env, go())


@memoize
def collect() -> List[dict]:
    rows = []
    for size in SIZES:
        fabric = fabric_latency(size)
        dma = dma_latency(size)
        rows.append({"size": size, "fabric_ns": fabric, "dma_ns": dma,
                     "ratio": dma / fabric})
    return rows


def test_s1_fabric_wins_small_transfers(benchmark):
    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    small = rows[0]
    assert small["size"] == 64
    assert small["ratio"] > 1.3   # the fixed taxes dominate at 64B
    benchmark.extra_info["ratio_at_64B"] = round(small["ratio"], 2)


def test_s1_gap_closes_with_size(benchmark):
    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    ratios = [r["ratio"] for r in rows]
    # Monotone trend: the comm fabric catches up as size grows.
    assert ratios[-1] < ratios[0]
    benchmark.extra_info["ratio_at_64KB"] = round(ratios[-1], 2)


def main() -> None:
    rows = [[r["size"], r["fabric_ns"], r["dma_ns"], r["ratio"]]
            for r in collect()]
    print_table("S1: remote read latency, fabric load/store vs DMA",
                ["bytes", "fabric ns", "comm-fabric ns", "ratio"], rows)


if __name__ == "__main__":
    main()
