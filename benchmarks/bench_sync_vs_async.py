"""Experiment S1: difference #1 — synchronous loads vs async DMA.

The paper's first difference: a memory fabric serves loads/stores
synchronously from the memory hierarchy, while a communication fabric
works in submission/completion rounds with stack, descriptor, and
interrupt taxes.  The builder lives in
:mod:`repro.experiments.defs.fabric` (experiment ``sync_vs_async``);
this script is its benchmark/CLI wrapper.
"""

from __future__ import annotations

import sys
from typing import List

from repro.experiments import render, run_summary

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import memoize


@memoize
def collect() -> List[dict]:
    return run_summary("sync_vs_async")["rows"]


def test_s1_fabric_wins_small_transfers(benchmark):
    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    small = rows[0]
    assert small["size"] == 64
    assert small["ratio"] > 1.3   # the fixed taxes dominate at 64B
    benchmark.extra_info["ratio_at_64B"] = round(small["ratio"], 2)


def test_s1_gap_closes_with_size(benchmark):
    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    ratios = [r["ratio"] for r in rows]
    # Monotone trend: the comm fabric catches up as size grows.
    assert ratios[-1] < ratios[0]
    benchmark.extra_info["ratio_at_64KB"] = round(ratios[-1], 2)


def main() -> None:
    render("sync_vs_async", summary={"rows": collect()})


if __name__ == "__main__":
    main()
