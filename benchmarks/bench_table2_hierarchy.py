"""Experiment T2 (+C1): reproduce Table 2 — hierarchy latency and MOPS.

Paper (Table 2, Omega Fabric testbed), 64B cacheline ops:

    level   read ns / MOPS      write ns / MOPS
    L1      5.4 / 357.4         5.4 / 355.4
    L2      13.6 / 143.4        12.5 / 154.5
    local   111.7 / 29.4        119.3 / 16.9
    remote  1575.3 / 2.5        1613.3 / 2.5

The builder lives in :mod:`repro.experiments.defs.tables` (experiment
``table2_hierarchy``); this script is its benchmark/CLI wrapper.
"""

from __future__ import annotations

import sys

from repro import params
from repro.experiments import render, run_summary
from repro.experiments.defs.tables import measure_level

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import memoize

OPS = 400


def measure(level: str, is_write: bool) -> dict:
    return measure_level(level, is_write, ops=OPS)


@memoize
def collect() -> list:
    return run_summary("table2_hierarchy")["rows"]


# -- pytest-benchmark entry points -----------------------------------------


def test_table2_read_latencies(benchmark):
    results = benchmark.pedantic(
        lambda: [measure(level, False)
                 for level in ("l1", "l2", "local", "remote")],
        rounds=1, iterations=1)
    by_level = {r["level"]: r for r in results}
    assert by_level["l1"]["latency_ns"] == \
        __import__("pytest").approx(params.L1_READ_NS, rel=0.05)
    assert by_level["l2"]["latency_ns"] == \
        __import__("pytest").approx(params.L2_READ_NS, rel=0.05)
    assert by_level["local"]["latency_ns"] == \
        __import__("pytest").approx(params.LOCAL_MEM_READ_NS, rel=0.05)
    assert by_level["remote"]["latency_ns"] == \
        __import__("pytest").approx(params.REMOTE_MEM_READ_NS, rel=0.05)
    benchmark.extra_info.update(
        {level: round(r["latency_ns"], 1) for level, r in by_level.items()})


def test_table2_mops_within_15pct_of_paper(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    for r in results:
        error = abs(r["mops"] - r["paper_mops"]) / r["paper_mops"]
        assert error < 0.15, (r, error)
    benchmark.extra_info["rows"] = len(results)


def test_c1_remote_local_ratio(benchmark):
    """C1: remote ~10x slower than local (latency and throughput)."""
    def ratios():
        local = measure("local", False)
        remote = measure("remote", False)
        return (remote["latency_ns"] / local["latency_ns"],
                local["mops"] / remote["mops"])

    latency_ratio, mops_ratio = benchmark.pedantic(ratios, rounds=1,
                                                   iterations=1)
    assert 10.0 <= latency_ratio <= 20.0
    assert 8.0 <= mops_ratio <= 15.0
    benchmark.extra_info["latency_ratio"] = round(latency_ratio, 1)
    benchmark.extra_info["mops_ratio"] = round(mops_ratio, 1)


def main() -> None:
    render("table2_hierarchy", summary={"rows": collect()})


if __name__ == "__main__":
    main()
