"""Experiment T2 (+C1): reproduce Table 2 — hierarchy latency and MOPS.

Paper (Table 2, Omega Fabric testbed), 64B cacheline ops:

    level   read ns / MOPS      write ns / MOPS
    L1      5.4 / 357.4         5.4 / 355.4
    L2      13.6 / 143.4        12.5 / 154.5
    local   111.7 / 29.4        119.3 / 16.9
    remote  1575.3 / 2.5        1613.3 / 2.5

A single core streams 64B ops against working sets sized to pin each
hierarchy level; throughput = min(issue rate, window/latency) with the
windows documented in EXPERIMENTS.md.  C1 ("remote nearly 10x slower
than local") falls out of the same rows.
"""

from __future__ import annotations

import sys

from repro import params
from repro.infra import ClusterSpec, build_cluster
from repro.sim import Environment

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import print_table, run_proc

#: outstanding-op window per measured level (fitted; see EXPERIMENTS.md)
WINDOWS = {"l1": 2, "l2": 2, "local": 3, "local_wr": 2, "remote": 4}

OPS = 400


def _trace(level: str, is_write: bool, base: int):
    """A stream that pins the requested level."""
    if level == "l1":
        # One hot line: always an L1 hit after warmup.
        return [(base, is_write)] * OPS
    if level == "l2":
        # Cyclic scan of 64KB: thrashes the 32KB L1, fits the 1MB L2.
        lines = [base + i * 64 for i in range(1024)]
        scans = -(-OPS // len(lines)) + 1
        return (lines * scans)[:OPS + 1024], is_write
    if level == "local":
        # Distinct far-apart lines: every access is a DRAM-cold miss.
        return [(base + i * 4096, is_write) for i in range(OPS)]
    if level == "remote":
        return [(base + i * 4096, is_write) for i in range(OPS)]
    raise ValueError(level)


def measure(level: str, is_write: bool) -> dict:
    env = Environment()
    cluster = build_cluster(env, ClusterSpec(hosts=1))
    host = cluster.host(0)
    core = host.core(0)
    base = host.remote_base("fam0") if level == "remote" else 1 << 20
    window = WINDOWS["local_wr"] if (level == "local" and is_write) \
        else WINDOWS[level]

    if level in ("l1", "l2"):
        if level == "l1":
            warm = [(base, is_write)]
            trace = [(base, is_write)] * OPS
        else:
            lines = [(base + i * 64, is_write) for i in range(1024)]
            warm = lines
            scans = -(-OPS // len(lines))
            trace = (lines * scans)[:OPS]
    else:
        warm = []
        trace = _trace(level, is_write, base)

    def go():
        if warm:
            yield from core.run(warm, window=window)
        stats = yield from core.run(trace, window=window)
        return stats

    stats = run_proc(env, go())
    return {"level": level, "op": "write" if is_write else "read",
            "latency_ns": stats.mean, "mops": stats.mops(),
            "window": window}


ROWS = [("l1", False), ("l1", True), ("l2", False), ("l2", True),
        ("local", False), ("local", True), ("remote", False),
        ("remote", True)]


def collect() -> list:
    results = []
    for level, is_write in ROWS:
        measured = measure(level, is_write)
        key = (level, measured["op"])
        paper_lat = {
            ("l1", "read"): params.L1_READ_NS,
            ("l1", "write"): params.L1_WRITE_NS,
            ("l2", "read"): params.L2_READ_NS,
            ("l2", "write"): params.L2_WRITE_NS,
            ("local", "read"): params.LOCAL_MEM_READ_NS,
            ("local", "write"): params.LOCAL_MEM_WRITE_NS,
            ("remote", "read"): params.REMOTE_MEM_READ_NS,
            ("remote", "write"): params.REMOTE_MEM_WRITE_NS,
        }[key]
        measured["paper_latency_ns"] = paper_lat
        measured["paper_mops"] = params.PAPER_MOPS[key]
        results.append(measured)
    return results


# -- pytest-benchmark entry points -----------------------------------------


def test_table2_read_latencies(benchmark):
    results = benchmark.pedantic(
        lambda: [measure(level, False)
                 for level in ("l1", "l2", "local", "remote")],
        rounds=1, iterations=1)
    by_level = {r["level"]: r for r in results}
    assert by_level["l1"]["latency_ns"] == \
        __import__("pytest").approx(params.L1_READ_NS, rel=0.05)
    assert by_level["l2"]["latency_ns"] == \
        __import__("pytest").approx(params.L2_READ_NS, rel=0.05)
    assert by_level["local"]["latency_ns"] == \
        __import__("pytest").approx(params.LOCAL_MEM_READ_NS, rel=0.05)
    assert by_level["remote"]["latency_ns"] == \
        __import__("pytest").approx(params.REMOTE_MEM_READ_NS, rel=0.05)
    benchmark.extra_info.update(
        {level: round(r["latency_ns"], 1) for level, r in by_level.items()})


def test_table2_mops_within_15pct_of_paper(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    for r in results:
        error = abs(r["mops"] - r["paper_mops"]) / r["paper_mops"]
        assert error < 0.15, (r, error)
    benchmark.extra_info["rows"] = len(results)


def test_c1_remote_local_ratio(benchmark):
    """C1: remote ~10x slower than local (latency and throughput)."""
    def ratios():
        local = measure("local", False)
        remote = measure("remote", False)
        return (remote["latency_ns"] / local["latency_ns"],
                local["mops"] / remote["mops"])

    latency_ratio, mops_ratio = benchmark.pedantic(ratios, rounds=1,
                                                   iterations=1)
    assert 10.0 <= latency_ratio <= 20.0
    assert 8.0 <= mops_ratio <= 15.0
    benchmark.extra_info["latency_ratio"] = round(latency_ratio, 1)
    benchmark.extra_info["mops_ratio"] = round(mops_ratio, 1)


def main() -> None:
    rows = []
    for r in collect():
        rows.append([f"{r['level']} {r['op']}", r["paper_latency_ns"],
                     r["latency_ns"], r["paper_mops"], r["mops"],
                     r["window"]])
    print_table(
        "Table 2: cacheline (64B) performance, paper vs simulated",
        ["level/op", "paper ns", "sim ns", "paper MOPS", "sim MOPS",
         "window"],
        rows)


if __name__ == "__main__":
    main()
