"""Experiment C6: credit-agnostic scheduling causes head-of-line blocking.

Paper (section 3): "The scheduling discipline of CFC switches is
credit-agnostic.  Transactions receiving more credits are not
prioritized over the ones with fewer credits.  This would cause
head-of-line blocking and credit waste, impacting both bandwidth and
latency."

The builder lives in :mod:`repro.experiments.defs.cfc` (experiment
``cfc_hol``); this script is its benchmark/CLI wrapper.
"""

from __future__ import annotations

import sys
from typing import Dict

from repro.experiments import render, run_summary

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import memoize


@memoize
def collect() -> Dict[str, dict]:
    return run_summary("cfc_hol")["cases"]


def test_c6_priority_discipline_rescues_reserved_flow(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    fifo = results["fifo (credit-agnostic)"]["mean_ns"]
    prio = results["priority (arbiter)"]["mean_ns"]
    assert prio < fifo / 1.5
    benchmark.extra_info["fifo_ns"] = round(fifo, 1)
    benchmark.extra_info["priority_ns"] = round(prio, 1)


def test_c6_hol_blocking_visible_in_tail(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    fifo = results["fifo (credit-agnostic)"]
    prio = results["priority (arbiter)"]
    # The blocked flow's tail is dominated by queueing behind the
    # flood; priority scheduling flattens it.
    assert fifo["p99_ns"] > 1.5 * prio["p99_ns"]
    benchmark.extra_info["fifo_p99_ns"] = round(fifo["p99_ns"], 1)
    benchmark.extra_info["prio_p99_ns"] = round(prio["p99_ns"], 1)


def main() -> None:
    render("cfc_hol", summary={"cases": collect()})


if __name__ == "__main__":
    main()
