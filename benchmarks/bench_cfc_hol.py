"""Experiment C6: credit-agnostic scheduling causes head-of-line blocking.

Paper (section 3): "The scheduling discipline of CFC switches is
credit-agnostic.  Transactions receiving more credits are not
prioritized over the ones with fewer credits.  This would cause
head-of-line blocking and credit waste, impacting both bandwidth and
latency."

A latency-critical flow holds a large credit reservation; a best-effort
flow floods the same egress.  Under FIFO the reserved flow's flits wait
behind the flood (its credits sit idle — credit waste); with the
arbiter-programmed priority discipline the reservation actually buys
service order.
"""

from __future__ import annotations

import sys
from typing import Dict

from repro import params
from repro.fabric import Channel, Packet, PacketKind
from repro.pcie import FabricManager, PortRole, Topology
from repro.sim import Environment, StatSeries

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import memoize, print_table, run_proc

CRITICAL_READS = 40
FLOOD_WRITES = 400


def run_case(scheduler: str, prio: int) -> StatSeries:
    env = Environment()
    topo = Topology(env, scheduler=scheduler)
    topo.add_switch("sw0")
    for name in ("critical", "flood"):
        topo.add_endpoint(name)
        topo.connect_endpoint("sw0", name, role=PortRole.UPSTREAM)
    topo.add_endpoint("dev")
    topo.connect_endpoint("sw0", "dev",
                          link_params=params.LinkParams(lanes=4))
    FabricManager(topo).configure()
    dev = topo.port_of("dev")

    def handler(request):
        yield env.timeout(20.0)
        if request.kind is not PacketKind.MEM_RD:
            return None   # writes are posted in this scenario
        return request.make_response()

    dev.serve(handler, concurrency=8)
    dst = topo.endpoints["dev"].global_id
    stats = StatSeries("critical")

    def critical():
        port = topo.port_of("critical")
        for _ in range(CRITICAL_READS):
            packet = Packet(kind=PacketKind.MEM_RD,
                            channel=Channel.CXL_MEM,
                            src=port.port_id, dst=dst, nbytes=64,
                            meta={"prio": prio})
            start = env.now
            yield from port.request(packet)
            stats.add(env.now - start, time=env.now)
            yield env.timeout(150.0)

    def flood():
        port = topo.port_of("flood")
        for _ in range(FLOOD_WRITES):
            # Same channel/VC as the critical flow: VC separation
            # cannot save it; only the discipline can.
            packet = Packet(kind=PacketKind.MEM_WR,
                            channel=Channel.CXL_MEM,
                            src=port.port_id, dst=dst, nbytes=1024,
                            meta={"prio": 0})
            yield from port.post(packet)

    env.process(flood())
    run_proc(env, critical())
    return stats


@memoize
def collect() -> Dict[str, StatSeries]:
    return {
        "fifo (credit-agnostic)": run_case("fifo", prio=0),
        "priority (arbiter)": run_case("priority", prio=10),
    }


def test_c6_priority_discipline_rescues_reserved_flow(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    fifo = results["fifo (credit-agnostic)"].mean
    prio = results["priority (arbiter)"].mean
    assert prio < fifo / 1.5
    benchmark.extra_info["fifo_ns"] = round(fifo, 1)
    benchmark.extra_info["priority_ns"] = round(prio, 1)


def test_c6_hol_blocking_visible_in_tail(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    fifo = results["fifo (credit-agnostic)"]
    prio = results["priority (arbiter)"]
    # The blocked flow's tail is dominated by queueing behind the
    # flood; priority scheduling flattens it.
    assert fifo.p99 > 1.5 * prio.p99
    benchmark.extra_info["fifo_p99_ns"] = round(fifo.p99, 1)
    benchmark.extra_info["prio_p99_ns"] = round(prio.p99, 1)


def main() -> None:
    results = collect()
    rows = [[case, stats.mean, stats.p99]
            for case, stats in results.items()]
    print_table("C6: reserved-flow latency under a best-effort flood",
                ["discipline", "mean ns", "p99 ns"], rows)


if __name__ == "__main__":
    main()
