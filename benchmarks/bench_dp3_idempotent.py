"""Experiment A3: DP#3 ablation — idempotent tasks vs full restart.

Failure-rate sweep over a pipeline task (per-region: read inputs,
compute, write outputs).  The builder lives in
:mod:`repro.experiments.defs.movement` (experiment ``dp3_idempotent``);
this script is its benchmark/CLI wrapper.
"""

from __future__ import annotations

import sys
from typing import Dict

from repro.experiments import render, run_summary
from repro.experiments.defs.movement import run_failure_case

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import memoize

RATES = (0.0, 0.01, 0.02, 0.05)


@memoize
def collect() -> Dict[str, Dict[str, dict]]:
    return run_summary("dp3_idempotent")["rates"]


def test_a3_idempotent_wastes_less_at_every_rate(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    for rate in RATES[1:]:
        idem = results[str(rate)]["idempotent"]
        restart = results[str(rate)]["restart"]
        assert idem["replayed_ops"] <= restart["replayed_ops"]
    worst = results[str(RATES[-1])]
    assert worst["idempotent"]["waste"] < worst["restart"]["waste"]
    benchmark.extra_info["waste_idem"] = round(
        worst["idempotent"]["waste"], 3)
    benchmark.extra_info["waste_restart"] = round(
        worst["restart"]["waste"], 3)


def test_a3_gap_widens_with_failure_rate(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    gaps = []
    for rate in RATES[1:]:
        idem = results[str(rate)]["idempotent"]["completion_us"]
        restart = results[str(rate)]["restart"]["completion_us"]
        gaps.append(restart / idem)
    assert gaps[-1] > gaps[0]
    benchmark.extra_info["slowdown_at_worst_rate"] = round(gaps[-1], 2)


def test_a3_zero_failures_costs_nothing_extra(benchmark):
    results = benchmark.pedantic(
        lambda: {r: run_failure_case(r, 0.0)
                 for r in ("idempotent", "restart")},
        rounds=1, iterations=1)
    assert results["idempotent"]["replayed_ops"] == 0
    assert results["restart"]["replayed_ops"] == 0


def main() -> None:
    render("dp3_idempotent", summary={"rates": collect()})


if __name__ == "__main__":
    main()
