"""Experiment A3: DP#3 ablation — idempotent tasks vs full restart.

Failure-rate sweep over a pipeline task (per-region: read inputs,
compute, write outputs).  Recovery modes:

* **idempotent** — replay only the interrupted region (the FCC model:
  regions have no clobber anti-dependences, replay is free of
  correctness hazards);
* **restart** — replay the whole task from the top (what a passive
  failure domain forces on you without the idempotent-task abstraction).

Expected shape: wasted (replayed) work and completion time grow
gently with failure rate under idempotent recovery and explosively
under restart — the gap widens with both failure rate and task length.
"""

from __future__ import annotations

import sys
from typing import Dict, List

from repro.core import FailureInjector, IdempotentTask, Task, TaskRuntime
from repro.infra import ClusterSpec, build_cluster
from repro.sim import Environment, SimRng

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import memoize, print_table, run_proc

REGIONS = 24
OPS_PER_REGION = 8
RATES = (0.0, 0.01, 0.02, 0.05)


def make_task() -> Task:
    task = Task("pipeline")
    for region in range(REGIONS):
        base = region * 0x2000
        for i in range(OPS_PER_REGION - 2):
            task.read(base + i * 64)
        task.compute(200.0)
        task.write(base)            # clobbers the region's first read
    return task


def run_case(recovery: str, rate: float, seed: int = 5) -> dict:
    env = Environment()
    cluster = build_cluster(env, ClusterSpec(hosts=1))
    injector = FailureInjector(rate=rate, rng=SimRng(seed))
    runtime = TaskRuntime(env, cluster.host(0), injector=injector,
                          recovery=recovery)
    task = make_task()

    def go():
        return (yield from runtime.execute(task))

    result = run_proc(env, go(), horizon=500_000_000_000)
    return {"completion_us": result.completion_ns / 1e3,
            "replayed_ops": result.replayed_ops,
            "waste": result.waste_fraction,
            "failures": result.failures}


@memoize
def collect() -> Dict[float, Dict[str, dict]]:
    out = {}
    for rate in RATES:
        out[rate] = {recovery: run_case(recovery, rate)
                     for recovery in ("idempotent", "restart")}
    return out


def test_a3_idempotent_wastes_less_at_every_rate(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    for rate in RATES[1:]:
        idem = results[rate]["idempotent"]
        restart = results[rate]["restart"]
        assert idem["replayed_ops"] <= restart["replayed_ops"]
    worst = results[RATES[-1]]
    assert worst["idempotent"]["waste"] < worst["restart"]["waste"]
    benchmark.extra_info["waste_idem"] = round(
        worst["idempotent"]["waste"], 3)
    benchmark.extra_info["waste_restart"] = round(
        worst["restart"]["waste"], 3)


def test_a3_gap_widens_with_failure_rate(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    gaps = []
    for rate in RATES[1:]:
        idem = results[rate]["idempotent"]["completion_us"]
        restart = results[rate]["restart"]["completion_us"]
        gaps.append(restart / idem)
    assert gaps[-1] > gaps[0]
    benchmark.extra_info["slowdown_at_worst_rate"] = round(gaps[-1], 2)


def test_a3_zero_failures_costs_nothing_extra(benchmark):
    results = benchmark.pedantic(
        lambda: {r: run_case(r, 0.0) for r in ("idempotent", "restart")},
        rounds=1, iterations=1)
    assert results["idempotent"]["replayed_ops"] == 0
    assert results["restart"]["replayed_ops"] == 0


def main() -> None:
    results = collect()
    rows: List[list] = []
    for rate, by_mode in results.items():
        for mode, r in by_mode.items():
            rows.append([f"{rate:.2f}", mode, r["completion_us"],
                         r["replayed_ops"], f"{r['waste']:.1%}",
                         r["failures"]])
    print_table(
        f"A3 (DP#3): {REGIONS}x{OPS_PER_REGION}-op task under failure "
        "injection",
        ["rate", "recovery", "time us", "replayed", "waste", "failures"],
        rows)


if __name__ == "__main__":
    main()
