"""Experiment control_loop: closed-loop credit feedback vs static.

Paper (ROADMAP closed-loop control plane; DFabric/Cohet in PAPERS.md):
a fabric OS must adapt allocation to observed contention.  The A/B
pins the recovery timeline end to end: the same fast-burn alert that
fires at 14,000 ns under static RampUpPolicy also trips the default
feedback rule, whose credit reallocation lands at exactly that window
edge — after which the quiet route's windowed credit_stall share
drops versus the static run while the hot route still never stalls.

The builder lives in :mod:`repro.experiments.defs.control`
(experiment ``control_loop``); this script is its benchmark/CLI
wrapper.
"""

from __future__ import annotations

import sys
from typing import Dict

from repro.experiments import render, run_summary

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import memoize

#: The golden-pinned actuation edge: the window whose close fires the
#: fast-burn alert is the window whose close applies the rescue.
ACTION_LANDS_AT_NS = 14_000.0


@memoize
def collect() -> Dict[str, dict]:
    return run_summary("control_loop")


def test_rescue_lands_on_the_alert_edge(benchmark):
    summary = benchmark.pedantic(collect, rounds=1, iterations=1)
    closed = summary["cases"]["closed-loop"]
    assert closed["fired_at"] == [ACTION_LANDS_AT_NS]
    assert [a["t"] for a in closed["actions"]] == [ACTION_LANDS_AT_NS]
    assert closed["actions"][0]["granted_after"] == {"hot": 16,
                                                     "quiet": 16}
    benchmark.extra_info["action_ns"] = closed["actions"][0]["t"]


def test_feedback_beats_static_without_starving_hot(benchmark):
    summary = benchmark.pedantic(collect, rounds=1, iterations=1)
    static = summary["cases"]["static"]
    closed = summary["cases"]["closed-loop"]
    assert static["actions"] == []
    assert max(closed["post_alert_share"]) \
        < max(static["post_alert_share"])
    assert closed["quiet_burst_ns"] < static["quiet_burst_ns"]
    assert closed["hot_stall_ns"] == 0.0
    benchmark.extra_info["post_alert_share"] = {
        "static": max(static["post_alert_share"]),
        "closed": max(closed["post_alert_share"])}


def main() -> None:
    render("control_loop", summary=collect())


if __name__ == "__main__":
    main()
