"""Experiment C4: unloaded 64B flit RTT and switch port latency.

Paper claims (sections 3 and 4): a FabreX-class switch delivers
"<100 ns non-blocking switch latency per port with up to 512 Gbit/s";
"the end-to-end RTT of a 64B flit at the data link layer in an
unloaded scenario can be up to 200 ns".

We ping one 64B read over host -> switch -> device and back with zero
device service time, one request in flight, and report the RTT; the
switch-crossing share is measured separately against the <100 ns/port
figure.
"""

from __future__ import annotations

import sys

import pytest

from repro import params
from repro.fabric import Channel, Packet, PacketKind
from repro.pcie import FabricManager, PortRole, Topology
from repro.sim import Environment

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import print_table, run_proc


def build(hops: int = 1):
    env = Environment()
    topo = Topology(env)
    names = [f"sw{i}" for i in range(hops)]
    for name in names:
        topo.add_switch(name)
    for a, b in zip(names, names[1:]):
        topo.connect_switches(a, b)
    topo.add_endpoint("host")
    topo.connect_endpoint(names[0], "host", role=PortRole.UPSTREAM)
    topo.add_endpoint("dev")
    topo.connect_endpoint(names[-1], "dev")
    FabricManager(topo).configure()
    dev = topo.port_of("dev")

    def echo(request):
        yield env.timeout(0)
        return request.make_response()

    dev.serve(echo)
    return env, topo


def measure_rtt(hops: int = 1, pings: int = 10) -> float:
    env, topo = build(hops)
    host = topo.port_of("host")
    rtts = []

    def go():
        for _ in range(pings):
            packet = Packet(kind=PacketKind.MEM_RD,
                            channel=Channel.CXL_MEM,
                            src=host.port_id,
                            dst=topo.endpoints["dev"].global_id,
                            nbytes=0)
            start = env.now
            yield from host.request(packet)
            rtts.append(env.now - start)
            yield env.timeout(1_000)   # unloaded: strictly one at a time

    run_proc(env, go())
    return sum(rtts) / len(rtts)


def test_c4_unloaded_rtt_near_200ns(benchmark):
    rtt = benchmark.pedantic(lambda: measure_rtt(hops=1), rounds=1,
                             iterations=1)
    assert rtt == pytest.approx(params.UNLOADED_FLIT_RTT_TARGET_NS,
                                rel=0.25)
    benchmark.extra_info["rtt_ns"] = round(rtt, 1)


def test_c4_switch_port_latency_below_100ns(benchmark):
    def crossing():
        one_hop = measure_rtt(hops=1)
        two_hop = measure_rtt(hops=2)
        # The extra hop adds two crossings (one each way) + two links.
        return (two_hop - one_hop) / 2 - 2 * params.LINK_PROPAGATION_NS

    per_port = benchmark.pedantic(crossing, rounds=1, iterations=1)
    assert per_port < 100.0
    benchmark.extra_info["switch_crossing_ns"] = round(per_port, 1)


def test_c4_port_bandwidth_target(benchmark):
    """An x16 @ 64GT/s port carries 1024 Gbit/s raw, above the 512
    Gbit/s FabreX figure; a bifurcated x8 matches it."""
    def rates():
        x16 = params.LinkParams(lanes=16).bytes_per_ns * 8
        x8 = params.LinkParams(lanes=8).bytes_per_ns * 8
        return x16, x8

    x16, x8 = benchmark.pedantic(rates, rounds=1, iterations=1)
    assert x8 == pytest.approx(params.SWITCH_PORT_BANDWIDTH_GBPS)
    benchmark.extra_info["x16_gbps"] = x16


def main() -> None:
    rows = []
    for hops in (1, 2, 3):
        rows.append([f"{hops} switch(es)", measure_rtt(hops=hops),
                     params.UNLOADED_FLIT_RTT_TARGET_NS if hops == 1
                     else "-"])
    print_table("C4: unloaded 64B flit RTT",
                ["path", "sim RTT ns", "paper target"], rows)


if __name__ == "__main__":
    main()
