"""Experiment C4: unloaded 64B flit RTT and switch port latency.

Paper claims (sections 3 and 4): a FabreX-class switch delivers
"<100 ns non-blocking switch latency per port with up to 512 Gbit/s";
"the end-to-end RTT of a 64B flit at the data link layer in an
unloaded scenario can be up to 200 ns".

The builder lives in :mod:`repro.experiments.defs.fabric` (experiment
``flit_rtt``); this script is its benchmark/CLI wrapper.
"""

from __future__ import annotations

import pytest

from repro import params
from repro.experiments import render
from repro.experiments.defs.fabric import measure_rtt


def test_c4_unloaded_rtt_near_200ns(benchmark):
    rtt = benchmark.pedantic(lambda: measure_rtt(hops=1), rounds=1,
                             iterations=1)
    assert rtt == pytest.approx(params.UNLOADED_FLIT_RTT_TARGET_NS,
                                rel=0.25)
    benchmark.extra_info["rtt_ns"] = round(rtt, 1)


def test_c4_switch_port_latency_below_100ns(benchmark):
    def crossing():
        one_hop = measure_rtt(hops=1)
        two_hop = measure_rtt(hops=2)
        # The extra hop adds two crossings (one each way) + two links.
        return (two_hop - one_hop) / 2 - 2 * params.LINK_PROPAGATION_NS

    per_port = benchmark.pedantic(crossing, rounds=1, iterations=1)
    assert per_port < 100.0
    benchmark.extra_info["switch_crossing_ns"] = round(per_port, 1)


def test_c4_port_bandwidth_target(benchmark):
    """An x16 @ 64GT/s port carries 1024 Gbit/s raw, above the 512
    Gbit/s FabreX figure; a bifurcated x8 matches it."""
    def rates():
        x16 = params.LinkParams(lanes=16).bytes_per_ns * 8
        x8 = params.LinkParams(lanes=8).bytes_per_ns * 8
        return x16, x8

    x16, x8 = benchmark.pedantic(rates, rounds=1, iterations=1)
    assert x8 == pytest.approx(params.SWITCH_PORT_BANDWIDTH_GBPS)
    benchmark.extra_info["x16_gbps"] = x16


def main() -> None:
    render("flit_rtt")


if __name__ == "__main__":
    main()
