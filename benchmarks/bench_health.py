"""Experiment health: streaming SLO alerts on the starvation scenario.

Paper (section 3, claim C5): under a ramp-up credit policy a steadily
hot flow compounds its grant while a quiet flow decays to the floor —
and the moment the quiet flow bursts, nearly all of its latency is
credit stall.  The streaming health layer must *notice*: the
quiet-route error-budget burn rate crosses the fast-burn alert
threshold at a fixed sim time under RampUpPolicy, and the same SLO
stays quiet under the fair StaticEqualPolicy control.

The builder lives in :mod:`repro.experiments.defs.health` (experiment
``fabric_health``); this script is its benchmark/CLI wrapper.
"""

from __future__ import annotations

import sys
from typing import Dict

from repro.experiments import render, run_summary

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import memoize

#: The golden-pinned alert edge: the quiet burst starts at 12,000 ns
#: (after six rebalance periods of decay) and the first whole window
#: containing its stall closes at 14,000 ns.
ALERT_FIRES_AT_NS = 14_000.0


@memoize
def collect() -> Dict[str, dict]:
    return run_summary("fabric_health")


def test_health_alert_fires_at_the_pinned_edge(benchmark):
    summary = benchmark.pedantic(collect, rounds=1, iterations=1)
    alerts = summary["cases"]["rampup"]["alerts"]
    assert [a["fired_at"] for a in alerts] == [ALERT_FIRES_AT_NS]
    assert alerts[0]["slo"] == "quiet_route_stall"
    benchmark.extra_info["fired_at_ns"] = alerts[0]["fired_at"]


def test_health_fair_policy_stays_quiet(benchmark):
    summary = benchmark.pedantic(collect, rounds=1, iterations=1)
    fair = summary["cases"]["fair"]
    assert fair["alerts"] == []
    assert fair["anomaly_ns"] == []
    benchmark.extra_info["peak_burn"] = fair["peak_burn"]


def main() -> None:
    render("fabric_health", summary=collect())


if __name__ == "__main__":
    main()
