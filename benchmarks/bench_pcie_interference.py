"""Experiment C2: concurrent 64B PCIe writes add ~600 ns of latency.

Paper (section 3, difference #3): "When accessing a disaggregated
Xilinx U55C FPGA card in a remote chassis, concurrent 64B PCIe writes
can add 600ns more one-way latencies when compared with the case of
holding the card within the host."

We sweep the number of hosts concurrently streaming posted 64B writes
at one remote device behind a single downstream port and report the
added one-way latency versus the unloaded case.  The contended
resources are the switch egress wire, its staging queues, the
downstream link credits, and the device service pipeline — exactly the
queueing effects a discrete-event model reproduces.
"""

from __future__ import annotations

import sys
from typing import Tuple

from repro import params
from repro.fabric import Channel, Packet, PacketKind
from repro.pcie import FabricManager, PortRole, Topology
from repro.sim import Environment, StatSeries

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import print_table, run_proc

DEVICE_SERVICE_NS = 250.0     # FPGA-side handling of one 64B write
WRITES_PER_HOST = 150


def build(hosts: int):
    env = Environment()
    # The remote chassis hangs off a narrow x4 downstream link (a
    # single FPGA card), while hosts bring x16 uplinks.
    topo = Topology(env)
    topo.add_switch("sw0")
    for h in range(hosts):
        topo.add_endpoint(f"host{h}")
        topo.connect_endpoint("sw0", f"host{h}", role=PortRole.UPSTREAM)
    topo.add_endpoint("fpga")
    topo.connect_endpoint("sw0", "fpga",
                          link_params=params.LinkParams(lanes=4))
    FabricManager(topo).configure()
    fpga = topo.port_of("fpga")

    def handler(request):
        yield env.timeout(DEVICE_SERVICE_NS)
        return request.make_response()

    fpga.serve(handler, concurrency=2)
    return env, topo


def one_way_latency(hosts: int) -> float:
    """Mean request one-way latency (send -> device starts serving)."""
    env, topo = build(hosts)
    stats = StatSeries("oneway")
    dst = topo.endpoints["fpga"].global_id

    def client(h):
        port = topo.port_of(f"host{h}")
        for i in range(WRITES_PER_HOST):
            packet = Packet(kind=PacketKind.MEM_WR,
                            channel=Channel.CXL_MEM,
                            src=port.port_id, dst=dst, nbytes=64)
            start = env.now
            yield from port.request(packet)
            rtt = env.now - start
            # One-way share: subtract the device service and halve.
            stats.add((rtt - DEVICE_SERVICE_NS) / 2, time=env.now)

    procs = [env.process(client(h)) for h in range(hosts)]

    def wait():
        yield env.all_of(procs)

    run_proc(env, wait())
    return stats.mean


def sweep() -> list:
    unloaded = one_way_latency(1)
    rows = []
    for hosts in (1, 2, 4, 8, 16):
        latency = one_way_latency(hosts)
        rows.append((hosts, latency, latency - unloaded))
    return rows


def test_c2_interference_adds_hundreds_of_ns(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    added = {hosts: delta for hosts, _, delta in rows}
    assert added[1] == 0.0
    # Growth with fan-in (2 hosts still fit the pipe)...
    assert added[8] > added[4] > 0
    # ...reaching the paper's ~600ns scale at high concurrency.
    assert 300.0 <= added[16] <= 3_000.0
    benchmark.extra_info["added_ns_at_16_hosts"] = round(added[16], 1)


def test_c2_unloaded_baseline_sane(benchmark):
    latency = benchmark.pedantic(lambda: one_way_latency(1), rounds=1,
                                 iterations=1)
    # One-way unloaded must sit near half the ~200ns RTT.
    assert 50.0 <= latency <= 250.0
    benchmark.extra_info["unloaded_oneway_ns"] = round(latency, 1)


def main() -> None:
    rows = [[hosts, latency, delta,
             params.PCIE_INTERFERENCE_TARGET_NS if hosts == 16 else "-"]
            for hosts, latency, delta in sweep()]
    print_table("C2: concurrent 64B writes to one remote chassis",
                ["hosts", "one-way ns", "added ns", "paper scale"], rows)


if __name__ == "__main__":
    main()
