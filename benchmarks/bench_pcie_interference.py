"""Experiment C2: concurrent 64B PCIe writes add ~600 ns of latency.

Paper (section 3, difference #3): "When accessing a disaggregated
Xilinx U55C FPGA card in a remote chassis, concurrent 64B PCIe writes
can add 600ns more one-way latencies when compared with the case of
holding the card within the host."

The builder lives in :mod:`repro.experiments.defs.fabric` (experiment
``pcie_interference``); this script is its benchmark/CLI wrapper.
"""

from __future__ import annotations

import sys

from repro.experiments import render, run_summary
from repro.experiments.defs.fabric import one_way_latency

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import memoize


@memoize
def collect() -> dict:
    return run_summary("pcie_interference")


def sweep() -> list:
    return [(r["hosts"], r["oneway_ns"], r["added_ns"])
            for r in collect()["rows"]]


def test_c2_interference_adds_hundreds_of_ns(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    added = {hosts: delta for hosts, _, delta in rows}
    assert added[1] == 0.0
    # Growth with fan-in (2 hosts still fit the pipe)...
    assert added[8] > added[4] > 0
    # ...reaching the paper's ~600ns scale at high concurrency.
    assert 300.0 <= added[16] <= 3_000.0
    benchmark.extra_info["added_ns_at_16_hosts"] = round(added[16], 1)


def test_c2_unloaded_baseline_sane(benchmark):
    latency = benchmark.pedantic(lambda: one_way_latency(1), rounds=1,
                                 iterations=1)
    # One-way unloaded must sit near half the ~200ns RTT.
    assert 50.0 <= latency <= 250.0
    benchmark.extra_info["unloaded_oneway_ns"] = round(latency, 1)


def main() -> None:
    render("pcie_interference", summary=collect())


if __name__ == "__main__":
    main()
