"""Experiment F1: Figure 1 — the composable-infrastructure architecture.

Builds the rack of Figure 1(b): n host servers (CPU + local DIMMs +
FHA), a fabric switch, FAM chassis (FEA + controller + rDIMM modules)
and an FAA chassis, then checks the structural inventory and that
every host reaches every chassis through the fabric.  Registered as
experiment ``fig1_composition``.
"""

from __future__ import annotations

import sys

from repro.experiments import render
from repro.experiments.defs.tables import build_fig1
from repro.fabric import Channel, Packet, PacketKind
from repro.sim import Environment

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import run_proc


def build():
    env = Environment()
    cluster = build_fig1(env)
    return env, cluster


def test_fig1_inventory(benchmark):
    env, cluster = benchmark.pedantic(build, rounds=1, iterations=1)
    # Figure 1(b): hosts with FHAs and local DIMMs...
    assert len(cluster.hosts) == 2
    for host in cluster.hosts.values():
        assert host.fha is not None
        assert not host.address_map.regions()[0].is_remote
    # ...a FAM chassis modelled after Omega's six E3.S modules...
    assert len(cluster.fam("fam0").modules) == 6
    # ...an FAA chassis modelled after Fabrex's eight accelerators...
    assert len(cluster.faa("faa0").accelerators) == 8
    # ...one switch whose ports cover every endpoint.
    switch = cluster.topology.switches["sw0"]
    assert switch.port_count() == 4   # 2 hosts + fam + faa
    benchmark.extra_info["switch_ports"] = switch.port_count()


def test_fig1_all_hosts_reach_all_devices(benchmark):
    def go_all():
        env, cluster = build()

        def one(host, dst_name):
            packet = Packet(kind=PacketKind.MEM_RD,
                            channel=Channel.CXL_MEM,
                            src=host.port.port_id,
                            dst=cluster.endpoint_id(dst_name), nbytes=64)
            response = yield from host.port.request(packet)
            return response.kind

        results = []
        for host in cluster.hosts.values():
            results.append(run_proc(env, one(host, "fam0")))
        return results

    kinds = benchmark.pedantic(go_all, rounds=1, iterations=1)
    assert all(k is PacketKind.MEM_RD_DATA for k in kinds)


def main() -> None:
    render("fig1_composition")


if __name__ == "__main__":
    main()
