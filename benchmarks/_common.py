"""Shared helpers for the benchmark harness.

Every benchmark file reproduces one table/figure/claim from the paper
(see the per-experiment index in DESIGN.md).  Conventions:

* pytest-benchmark measures the wall-clock cost of running the
  simulation; the *simulated* metrics the paper reports are attached to
  ``benchmark.extra_info`` and printed by each module's ``main()``;
* every module is runnable directly (``python benchmarks/bench_x.py``)
  and prints the paper-format rows.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.sim import run_proc  # noqa: F401  (canonical home: repro.sim)

__all__ = ["run_proc", "fmt_row", "print_table"]


def fmt_row(columns: List[Any], widths: List[int]) -> str:
    cells = []
    for value, width in zip(columns, widths):
        if isinstance(value, float):
            cells.append(f"{value:>{width}.1f}")
        else:
            cells.append(f"{value!s:>{width}}")
    return "  ".join(cells)


def print_table(title: str, header: List[str], rows: List[List[Any]],
                widths: Optional[List[int]] = None) -> None:
    widths = widths or [max(12, len(h)) for h in header]
    print(f"\n=== {title} ===")
    print(fmt_row(header, widths))
    print("-" * (sum(widths) + 2 * len(widths)))
    for row in rows:
        print(fmt_row(row, widths))


def memoize(fn):
    """Cache a zero-argument collect() so paired tests share one run."""
    sentinel = object()
    state = {"value": sentinel}

    def wrapper():
        if state["value"] is sentinel:
            state["value"] = fn()
        return state["value"]

    wrapper.__doc__ = fn.__doc__
    wrapper.__name__ = getattr(fn, "__name__", "collect")
    return wrapper
