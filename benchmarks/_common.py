"""Shared helpers for the benchmark harness.

Every benchmark file reproduces one table/figure/claim from the paper
(see the per-experiment index in DESIGN.md).  Conventions:

* pytest-benchmark measures the wall-clock cost of running the
  simulation; the *simulated* metrics the paper reports are attached to
  ``benchmark.extra_info`` and printed by each module's ``main()``;
* every module is runnable directly (``python benchmarks/bench_x.py``)
  and prints the paper-format rows.

The table formatter lives in :mod:`repro.experiments.format` (the
experiment registry renders the same tables); ``fmt_row`` and
``print_table`` are re-exported here so pre-registry benchmark code
keeps importing from one place.
"""

from __future__ import annotations

from repro.experiments.format import fmt_row, print_table  # noqa: F401
from repro.sim import run_proc  # noqa: F401  (canonical home: repro.sim)

__all__ = ["run_proc", "fmt_row", "print_table", "memoize"]


def memoize(fn):
    """Cache a zero-argument collect() so paired tests share one run."""
    sentinel = object()
    state = {"value": sentinel}

    def wrapper():
        if state["value"] is sentinel:
            state["value"] = fn()
        return state["value"]

    wrapper.__doc__ = fn.__doc__
    wrapper.__name__ = getattr(fn, "__name__", "collect")
    return wrapper
