"""Experiment xswitch: cross-switch starvation on a declarative fabric.

Paper (section 3): "Credit starvation can backpropagate to upstreamed
switch ports under scale-out scenarios."  Here the scale-out fabric is
*generated*: the committed ``xswitch_fat_tree_2pod`` topology shape (a
2-pod fat tree, pods joined by one narrow inter-pod spine link with
its own credit budget — the DFabric hybrid regime).  The victim reads
a remote-pod device that shares no endpoint and no leaf switch with
the flood, yet its latency multiplies under FIFO egress because the
flood's congestion holds the inter-pod link's credits.

The builder lives in :mod:`repro.experiments.defs.topo` (experiment
``xswitch_starvation``); this script is its benchmark/CLI wrapper.
"""

from __future__ import annotations

import sys
from typing import Dict

from repro.experiments import render, run_summary

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import memoize


@memoize
def collect() -> Dict[str, dict]:
    return run_summary("xswitch_starvation")


def test_xswitch_congestion_crosses_the_interpod_link(benchmark):
    summary = benchmark.pedantic(collect, rounds=1, iterations=1)
    cases = summary["cases"]
    quiet = cases["fifo quiet"]["mean_ns"]
    congested = cases["fifo congested"]["mean_ns"]
    # Victim and flood share only the spine-to-spine hop; the victim
    # still suffers a multiple of its quiet latency.
    assert congested > 3.0 * quiet
    benchmark.extra_info["quiet_ns"] = round(quiet, 1)
    benchmark.extra_info["congested_ns"] = round(congested, 1)


def test_xswitch_fair_queueing_contains_the_spread(benchmark):
    summary = benchmark.pedantic(collect, rounds=1, iterations=1)
    cases = summary["cases"]
    fair = cases["fair congested"]["mean_ns"]
    fifo = cases["fifo congested"]["mean_ns"]
    quiet = cases["fifo quiet"]["mean_ns"]
    assert fair < fifo / 2
    assert fair < 1.5 * quiet
    benchmark.extra_info["fair_ns"] = round(fair, 1)


def main() -> None:
    render("xswitch_starvation", summary=collect())


if __name__ == "__main__":
    main()
