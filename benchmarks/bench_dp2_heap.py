"""Experiment A2: DP#2 ablation — the node-type-conscious unified heap.

A skewed object workload (a few hot objects, many cold ones) runs over
three heaps whose local bin is far too small for the dataset:

* **static-first** — AIFM-style: objects placed once in fill order,
  never migrated (hot objects happen to sit in far memory);
* **static-rr** — striped placement, still no migration;
* **unified** — the DP#2 heap: the profiler spots hot objects, the
  runtime promotes them into local memory and demotes cold ones.

Expected shape: the unified heap converges toward local-memory access
times for the hot set, while static placements keep paying the ~1575 ns
remote latency on every hot access.
"""

from __future__ import annotations

import sys
from typing import Dict

from repro.baselines import StaticPlacementHeap
from repro.core import MovementOrchestrator, UnifiedHeap
from repro.core.heap import HeapRuntime
from repro.infra import ClusterSpec, build_cluster
from repro.mem import CacheConfig
from repro.sim import Environment, SimRng, StatSeries

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import memoize, print_table, run_proc

OBJECTS = 64
OBJECT_BYTES = 8192
HOT_OBJECTS = 6
ACCESSES = 1500
LOCAL_BIN_BYTES = 96 * 1024      # room for ~12 objects


#: Deliberately small host caches so the hot set does not fit: the
#: experiment isolates *placement*, not the caching that difference #1
#: already provides (Table 2's L1 row covers that).
TINY_CACHES = (
    CacheConfig(name="l1", size_bytes=4 * 1024, assoc=4,
                read_ns=5.4, write_ns=5.4),
    CacheConfig(name="l2", size_bytes=16 * 1024, assoc=8,
                read_ns=13.6, write_ns=12.5),
)


def run_case(mode: str) -> StatSeries:
    env = Environment()
    cluster = build_cluster(env, ClusterSpec(hosts=1,
                                             cache_configs=TINY_CACHES))
    host = cluster.host(0)
    engine = MovementOrchestrator(env).attach_host(host)
    if mode == "unified":
        heap = UnifiedHeap(env, host, engine)
    else:
        placement = "first" if mode == "static-first" else "round-robin"
        heap = StaticPlacementHeap(env, host, engine, placement=placement)
    heap.add_bin("local", start=8 << 20, size=LOCAL_BIN_BYTES,
                 tier="local", is_remote=False)
    heap.add_bin("fam0", start=host.remote_base("fam0"), size=32 << 20,
                 tier="cpuless-numa", is_remote=True)
    if mode == "unified":
        runtime = HeapRuntime(env, heap, local_bin="local",
                              interval_ns=10_000.0,
                              promote_threshold=3.0,
                              demote_threshold=0.5)
        runtime.start()

    # Allocate cold objects first so "first" placement exiles the hot
    # ones (allocated last) to far memory — the adversarial-but-common
    # case static placement cannot fix.
    pointers = [heap.allocate(OBJECT_BYTES) for _ in range(OBJECTS)]
    hot = pointers[-HOT_OBJECTS:]
    cold = pointers[:-HOT_OBJECTS]
    rng = SimRng(7)
    stats = StatSeries(mode)

    def go():
        for _ in range(ACCESSES):
            if rng.bernoulli(0.9):
                target = rng.choice(hot)
            else:
                target = rng.choice(cold)
            start = env.now
            yield from target.read(rng.randint(0, 7) * 1024, nbytes=1024)
            stats.add(env.now - start, time=env.now)
            yield env.timeout(50.0)
        return stats

    return run_proc(env, go(), horizon=50_000_000_000)


@memoize
def collect() -> Dict[str, StatSeries]:
    return {mode: run_case(mode)
            for mode in ("static-first", "static-rr", "unified")}


def test_a2_unified_heap_beats_static_placement(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    unified = results["unified"].mean
    assert unified < results["static-first"].mean / 1.5
    benchmark.extra_info.update(
        {k: round(v.mean, 1) for k, v in results.items()})


def test_a2_unified_tail_converges_to_local(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    tail = StatSeries("tail")
    # The last third of accesses: migration has converged.
    for sample in results["unified"].samples[-ACCESSES // 3:]:
        tail.add(sample)
    assert tail.mean < 400.0    # far below the 1575ns remote read


def main() -> None:
    results = collect()
    rows = [[mode, stats.mean, stats.p99]
            for mode, stats in results.items()]
    print_table(
        f"A2 (DP#2): {OBJECTS} objects, {HOT_OBJECTS} hot (90% of "
        "accesses), local bin fits ~12",
        ["heap", "mean access ns", "p99 ns"], rows)


if __name__ == "__main__":
    main()
