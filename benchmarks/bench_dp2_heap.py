"""Experiment A2: DP#2 ablation — the node-type-conscious unified heap.

A skewed object workload (a few hot objects, many cold ones) runs over
three heaps whose local bin is far too small for the dataset.  The
builder lives in :mod:`repro.experiments.defs.movement` (experiment
``dp2_heap``); this script is its benchmark/CLI wrapper.
"""

from __future__ import annotations

import sys
from typing import Dict

from repro.experiments import render, run_summary

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import memoize


@memoize
def collect() -> Dict[str, dict]:
    return run_summary("dp2_heap")["modes"]


def test_a2_unified_heap_beats_static_placement(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    unified = results["unified"]["mean_ns"]
    assert unified < results["static-first"]["mean_ns"] / 1.5
    benchmark.extra_info.update(
        {k: round(v["mean_ns"], 1) for k, v in results.items()})


def test_a2_unified_tail_converges_to_local(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    # The last third of accesses: migration has converged.
    assert results["unified"]["tail_mean_ns"] < 400.0


def main() -> None:
    render("dp2_heap", summary={"modes": collect()})


if __name__ == "__main__":
    main()
