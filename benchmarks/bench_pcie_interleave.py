"""Experiment C3: 64B latency degrades when interleaved with 16KB writes.

Paper (section 3, difference #3): "When interleaved with 16KB writes,
the average latency of 64B requests can be degraded drastically."

The builder lives in :mod:`repro.experiments.defs.fabric` (experiment
``pcie_interleave``); this script is its benchmark/CLI wrapper.
"""

from __future__ import annotations

import sys
from typing import Dict

from repro.experiments import render, run_summary

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import memoize


@memoize
def collect() -> Dict[str, dict]:
    return run_summary("pcie_interleave")["cases"]


def test_c3_fifo_interleaving_degrades_small_reads(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    alone = results["alone"]["mean_ns"]
    fifo = results["fifo+16KB"]["mean_ns"]
    # "Degraded drastically": at least 2x the unloaded latency.
    assert fifo > 2.0 * alone
    benchmark.extra_info["alone_ns"] = round(alone, 1)
    benchmark.extra_info["fifo_ns"] = round(fifo, 1)


def test_c3_fair_queueing_bounds_the_damage(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    fifo = results["fifo+16KB"]["mean_ns"]
    fair = results["fair+16KB"]["mean_ns"]
    assert fair < fifo
    # Fair queueing keeps the 64B mean within ~4x of unloaded.
    assert fair < 4.0 * results["alone"]["mean_ns"]
    benchmark.extra_info["fair_ns"] = round(fair, 1)


def main() -> None:
    render("pcie_interleave", summary={"cases": collect()})


if __name__ == "__main__":
    main()
