"""Experiment C3: 64B latency degrades when interleaved with 16KB writes.

Paper (section 3, difference #3): "When interleaved with 16KB writes,
the average latency of 64B requests can be degraded drastically."

One host issues latency-sensitive 64B reads while another streams
posted 16KB writes into the same remote chassis.  With the
credit-agnostic FIFO egress discipline the 64B flits physically queue
behind bulk flits (the paper's observation); start-time fair queueing
across virtual channels bounds the damage — the fix DP#4 programs.
"""

from __future__ import annotations

import sys
from typing import Dict

from repro import params
from repro.fabric import Channel, Packet, PacketKind
from repro.pcie import FabricManager, PortRole, Topology
from repro.sim import Environment, StatSeries

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import memoize, print_table, run_proc

READS = 40
BULK_WRITES = 80


def run_case(scheduler: str, with_bulk: bool) -> StatSeries:
    env = Environment()
    topo = Topology(env, scheduler=scheduler)
    topo.add_switch("sw0")
    for name in ("reader", "writer"):
        topo.add_endpoint(name)
        topo.connect_endpoint("sw0", name, role=PortRole.UPSTREAM)
    topo.add_endpoint("dev")
    topo.connect_endpoint("sw0", "dev",
                          link_params=params.LinkParams(lanes=4))
    FabricManager(topo).configure()
    dev = topo.port_of("dev")

    def handler(request):
        yield env.timeout(params.FAM_ACCESS_NS)
        if request.kind is PacketKind.IO_WR:
            return None   # posted
        return request.make_response()

    dev.serve(handler, concurrency=8)
    dst = topo.endpoints["dev"].global_id
    stats = StatSeries("64B")

    def reader():
        port = topo.port_of("reader")
        for _ in range(READS):
            packet = Packet(kind=PacketKind.MEM_RD,
                            channel=Channel.CXL_MEM,
                            src=port.port_id, dst=dst, nbytes=64)
            start = env.now
            yield from port.request(packet)
            stats.add(env.now - start, time=env.now)
            yield env.timeout(300.0)

    def writer():
        port = topo.port_of("writer")
        for _ in range(BULK_WRITES):
            packet = Packet(kind=PacketKind.IO_WR,
                            channel=Channel.CXL_IO,
                            src=port.port_id, dst=dst, nbytes=16 * 1024)
            yield from port.post(packet)

    procs = [env.process(reader())]
    if with_bulk:
        procs.append(env.process(writer()))

    def wait():
        yield env.all_of(procs)

    run_proc(env, wait())
    return stats


@memoize
def collect() -> Dict[str, StatSeries]:
    return {
        "alone": run_case("fifo", with_bulk=False),
        "fifo+16KB": run_case("fifo", with_bulk=True),
        "fair+16KB": run_case("fair", with_bulk=True),
    }


def test_c3_fifo_interleaving_degrades_small_reads(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    alone = results["alone"].mean
    fifo = results["fifo+16KB"].mean
    # "Degraded drastically": at least 2x the unloaded latency.
    assert fifo > 2.0 * alone
    benchmark.extra_info["alone_ns"] = round(alone, 1)
    benchmark.extra_info["fifo_ns"] = round(fifo, 1)


def test_c3_fair_queueing_bounds_the_damage(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    fifo = results["fifo+16KB"].mean
    fair = results["fair+16KB"].mean
    assert fair < fifo
    # Fair queueing keeps the 64B mean within ~4x of unloaded.
    assert fair < 4.0 * results["alone"].mean
    benchmark.extra_info["fair_ns"] = round(fair, 1)


def main() -> None:
    results = collect()
    rows = [[case, stats.mean, stats.p99,
             stats.mean / results["alone"].mean]
            for case, stats in results.items()]
    print_table("C3: 64B read latency vs 16KB write interleaving",
                ["case", "mean ns", "p99 ns", "vs alone"], rows)


if __name__ == "__main__":
    main()
