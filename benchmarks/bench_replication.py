"""Extension experiment E4: node replication vs direct shared access.

Section 4 (DP#2) points at node replication as the technique that
"would benefit fabric-attached CC-NUMA memory nodes".  We sweep the
read fraction of a two-host shared-counter workload and compare direct
fabric access against the NR-style replicated object.  The builder
lives in :mod:`repro.experiments.defs.memory` (experiment
``replication``); this script is its benchmark/CLI wrapper.
"""

from __future__ import annotations

import sys
from typing import Dict

from repro.experiments import render, run_summary

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import memoize

READ_FRACTIONS = (0.5, 0.9, 0.99)


@memoize
def collect() -> Dict[float, Dict[str, float]]:
    raw = run_summary("replication")["fractions"]
    return {float(fraction): by_mode for fraction, by_mode in raw.items()}


def test_e4_replication_wins_read_mostly(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    at_99 = results[0.99]
    assert at_99["replicated"] < at_99["direct"]
    benchmark.extra_info["speedup_at_99pct_reads"] = round(
        at_99["direct"] / at_99["replicated"], 2)


def test_e4_advantage_grows_with_read_fraction(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    ratios = [results[f]["direct"] / results[f]["replicated"]
              for f in READ_FRACTIONS]
    assert ratios[-1] > ratios[0]


def main() -> None:
    render("replication", summary={
        "fractions": {str(f): by_mode for f, by_mode in collect().items()}})


if __name__ == "__main__":
    main()
