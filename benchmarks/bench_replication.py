"""Extension experiment E4: node replication vs direct shared access.

Section 4 (DP#2) points at node replication as the technique that
"would benefit fabric-attached CC-NUMA memory nodes".  We sweep the
read fraction of a two-host shared-counter workload and compare:

* **direct** — every operation traverses the shared structure in
  fabric memory (an 8-line walk, e.g. a small search-tree path);
* **replicated** — the NR-style object: reads answer from the local
  replica after a one-line tail probe, writes append one log entry.

Expected shape: replication wins decisively for read-mostly workloads
and loses its edge as the write fraction grows (every write still
crosses the fabric, plus replay work on the other replica).
"""

from __future__ import annotations

import sys
from typing import Dict

from repro.core import NodeReplicatedObject, UniFabric
from repro.infra import ClusterSpec, build_cluster
from repro.sim import Environment, SimRng

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import memoize, print_table, run_proc

OPS = 120
STRUCTURE_LINES = 8     # lines a direct operation must touch (tree walk)
READ_FRACTIONS = (0.5, 0.9, 0.99)


def apply_counter(state, operation):
    state["value"] = state.get("value", 0) + operation


def run_mode(mode: str, read_fraction: float) -> float:
    env = Environment()
    cluster = build_cluster(env, ClusterSpec(hosts=2))
    uni = UniFabric(env, cluster)
    rng = SimRng(int(read_fraction * 100))
    nr = NodeReplicatedObject(env, apply_counter,
                              initial_state={"value": 0})
    handles = {name: nr.attach(uni.heap(name),
                               shared_tier="cpuless-numa")
               for name in ("host0", "host1")}
    regions = {name: cluster.hosts[name].address_map.resolve(
        cluster.hosts[name].remote_base("fam0"))
        for name in ("host0", "host1")}

    def actor(name):
        handle = handles[name]
        region = regions[name]
        for _ in range(OPS):
            is_read = rng.bernoulli(read_fraction)
            if mode == "replicated":
                if is_read:
                    yield from handle.read(lambda s: s["value"])
                else:
                    yield from handle.write(1)
            else:
                # Direct: walk the shared structure line by line.
                for step in range(STRUCTURE_LINES):
                    yield from region.backend(0x100000 + step * 64,
                                              64, False)
                if not is_read:
                    yield from region.backend(0x100000, 64, True)

    def go():
        start = env.now
        workers = [env.process(actor(name))
                   for name in ("host0", "host1")]
        yield env.all_of(workers)
        return (env.now - start) / (2 * OPS)

    return run_proc(env, go(), horizon=500_000_000_000)


@memoize
def collect() -> Dict[float, Dict[str, float]]:
    return {fraction: {mode: run_mode(mode, fraction)
                       for mode in ("direct", "replicated")}
            for fraction in READ_FRACTIONS}


def test_e4_replication_wins_read_mostly(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    at_99 = results[0.99]
    assert at_99["replicated"] < at_99["direct"]
    benchmark.extra_info["speedup_at_99pct_reads"] = round(
        at_99["direct"] / at_99["replicated"], 2)


def test_e4_advantage_grows_with_read_fraction(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    ratios = [results[f]["direct"] / results[f]["replicated"]
              for f in READ_FRACTIONS]
    assert ratios[-1] > ratios[0]


def main() -> None:
    results = collect()
    rows = []
    for fraction, by_mode in results.items():
        rows.append([f"{fraction:.0%}", by_mode["direct"],
                     by_mode["replicated"],
                     by_mode["direct"] / by_mode["replicated"]])
    print_table(
        "E4 (extension): shared counter, 2 hosts — direct fabric access "
        "vs node replication",
        ["reads", "direct ns/op", "replicated ns/op", "speedup"], rows)


if __name__ == "__main__":
    main()
