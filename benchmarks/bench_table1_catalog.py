"""Experiment T1: Table 1 — the commodity memory-fabric catalog.

Not a performance experiment; regenerates the table as data and checks
the facts the paper states (four fabrics; Gen-Z and OpenCAPI merged
into CXL; CXL spans 1.0-3.0).  Registered as experiment
``table1_catalog``.
"""

from __future__ import annotations

from repro.experiments import render
from repro.fabric import CATALOG, format_table1


def test_table1_catalog(benchmark):
    table = benchmark.pedantic(format_table1, rounds=1, iterations=1)
    assert len(CATALOG) == 4
    merged = {spec.interconnect for spec in CATALOG if spec.merged_into_cxl}
    assert merged == {"Gen-Z", "CAPI/OpenCAPI"}
    cxl = next(s for s in CATALOG if s.interconnect == "CXL")
    assert cxl.specifications == ("CXL 1.0", "CXL 1.1", "CXL 2.0",
                                  "CXL 3.0")
    assert "Omega Fabric" in cxl.product_demonstrations
    assert "Gen-Z" in table
    benchmark.extra_info["fabrics"] = len(CATALOG)


def main() -> None:
    render("table1_catalog")


if __name__ == "__main__":
    main()
