"""Experiment A1: DP#1 ablation — data movement as a managed service.

Compares three ways to feed a compute loop whose working set lives in
fabric-attached memory: naive-sync, prefetch, and a managed staging
transaction.  The builder lives in
:mod:`repro.experiments.defs.movement` (experiment ``dp1_movement``);
this script is its benchmark/CLI wrapper.
"""

from __future__ import annotations

import sys
from typing import Dict

from repro.experiments import render, run_summary

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import memoize


@memoize
def collect() -> Dict[str, float]:
    return run_summary("dp1_movement")["modes"]


def test_a1_prefetch_beats_naive_sync(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    assert results["prefetch"] < results["naive-sync"]
    benchmark.extra_info.update(
        {k: round(v / 1e3, 1) for k, v in results.items()})


def test_a1_managed_movement_wins_on_reuse(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    # With 4 scans of reuse, staging via the migration agent beats
    # both sync flavours.
    assert results["managed"] < results["naive-sync"]
    benchmark.extra_info["speedup"] = round(
        results["naive-sync"] / results["managed"], 2)


def main() -> None:
    render("dp1_movement", summary={"modes": collect()})


if __name__ == "__main__":
    main()
