"""Experiment A1: DP#1 ablation — data movement as a managed service.

Compares three ways to feed a compute loop whose working set lives in
fabric-attached memory:

* **naive-sync** — every load goes synchronously to the FAM (the
  "communication fabric mindset" applied to load/store: no management);
* **prefetch** — the sync path plus the SW-assisted stride prefetcher
  (the DP#1 treatment for latency-critical synchronous accesses);
* **managed** — the working set is staged into local memory by a
  delegated elastic transaction (migration agent + orchestrator) before
  the compute loop touches it.

The paper's claim: blending sync+async movement under a managed
service hides remote access overheads.  Shape expected: naive-sync pays
~1575 ns per miss; prefetch approaches cache speed after the detector
warms; managed pays one bulk transfer then runs at local speed.
"""

from __future__ import annotations

import sys
from typing import Dict

from repro.core import ETrans, MovementOrchestrator, SequentialPrefetcher
from repro.infra import ClusterSpec, build_cluster
from repro.sim import Environment

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import memoize, print_table, run_proc

LINES = 512                      # 32KB working set
SCANS = 4                        # compute loop passes over it


def run_case(mode: str) -> float:
    env = Environment()
    cluster = build_cluster(env, ClusterSpec(hosts=1))
    host = cluster.host(0)
    orchestrator = MovementOrchestrator(env)
    engine = orchestrator.attach_host(host)
    remote_base = host.remote_base("fam0")
    local_stage = 8 << 20   # staging buffer in local DRAM
    prefetcher = SequentialPrefetcher(env, host, depth=16) \
        if mode == "prefetch" else None

    def go():
        start = env.now
        base = remote_base
        if mode == "managed":
            # Stage the working set with one delegated transaction.
            trans = ETrans(
                src_list=[(remote_base, LINES * 64)],
                dst_list=[(local_stage, LINES * 64)],
                attributes={"priority": 0})
            handle = engine.submit(trans)
            yield handle.wait()
            base = local_stage
        for _ in range(SCANS):
            for i in range(LINES):
                addr = base + i * 64
                if prefetcher is not None:
                    prefetcher.observe(addr)
                yield from host.mem.access(addr, False)
        return env.now - start

    return run_proc(env, go())


@memoize
def collect() -> Dict[str, float]:
    return {mode: run_case(mode)
            for mode in ("naive-sync", "prefetch", "managed")}


def test_a1_prefetch_beats_naive_sync(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    assert results["prefetch"] < results["naive-sync"]
    benchmark.extra_info.update(
        {k: round(v / 1e3, 1) for k, v in results.items()})


def test_a1_managed_movement_wins_on_reuse(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    # With 4 scans of reuse, staging via the migration agent beats
    # both sync flavours.
    assert results["managed"] < results["naive-sync"]
    benchmark.extra_info["speedup"] = round(
        results["naive-sync"] / results["managed"], 2)


def main() -> None:
    results = collect()
    naive = results["naive-sync"]
    rows = [[mode, value / 1e3, naive / value]
            for mode, value in results.items()]
    print_table("A1 (DP#1): compute loop over a 32KB remote working "
                f"set, {SCANS} scans",
                ["mode", "total us", "speedup"], rows)


if __name__ == "__main__":
    main()
