"""Extension experiment E5: graph traversal over fabric memory.

Pointer-heavy traversal is the workload far memory hurts most — the
next access depends on the last, so neither prefetching nor bandwidth
helps.  We run BFS over a CSR graph placed three ways:

* **local** — the whole graph in host DRAM (upper bound);
* **remote** — the whole graph in a FAM chassis, accessed on demand;
* **unified+runtime** — the graph in the DP#2 heap with the migration
  runtime on: repeated traversals heat the graph objects and the
  runtime pulls them local.

Expected shape: the first remote traversal pays full fabric latency on
every edge; the unified heap converges toward local performance across
iterations, while static-remote stays pinned to fabric speed whenever
the caches cannot hold the graph.
"""

from __future__ import annotations

import sys
from typing import Dict, List

from repro.core import MovementOrchestrator, UnifiedHeap
from repro.core.heap import HeapRuntime
from repro.infra import ClusterSpec, build_cluster
from repro.mem import CacheConfig
from repro.sim import Environment, SimRng
from repro.workloads import CsrGraph, random_graph

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import memoize, print_table, run_proc

VERTICES = 96
AVG_DEGREE = 3.0
TRAVERSALS = 4

#: small caches: the graph must not fit (placement is the variable)
TINY_CACHES = (
    CacheConfig(name="l1", size_bytes=2 * 1024, assoc=2,
                read_ns=5.4, write_ns=5.4),
    CacheConfig(name="l2", size_bytes=8 * 1024, assoc=4,
                read_ns=13.6, write_ns=12.5),
)


def run_mode(mode: str) -> List[float]:
    env = Environment()
    cluster = build_cluster(env, ClusterSpec(hosts=1,
                                             cache_configs=TINY_CACHES))
    host = cluster.host(0)
    engine = MovementOrchestrator(env).attach_host(host)
    heap = UnifiedHeap(env, host, engine)
    heap.add_bin("local", start=8 << 20, size=1 << 20, tier="local",
                 is_remote=False)
    heap.add_bin("fam0", start=host.remote_base("fam0"), size=8 << 20,
                 tier="cpuless-numa", is_remote=True)
    if mode == "unified+runtime":
        runtime = HeapRuntime(env, heap, local_bin="local",
                              interval_ns=20_000.0,
                              promote_threshold=3.0)
        runtime.start()
    tier = "local" if mode == "local" else "cpuless-numa"
    graph = CsrGraph(env, heap, random_graph(VERTICES, AVG_DEGREE,
                                             SimRng(17)),
                     prefer_tier=tier)
    times: List[float] = []

    def go():
        for _ in range(TRAVERSALS):
            start = env.now
            yield from graph.bfs(0)
            times.append(env.now - start)
            yield env.timeout(30_000.0)   # let the runtime react

    run_proc(env, go(), horizon=500_000_000_000)
    return times


@memoize
def collect() -> Dict[str, List[float]]:
    return {mode: run_mode(mode)
            for mode in ("local", "remote", "unified+runtime")}


def test_e5_first_remote_traversal_pays_fabric_latency(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    assert results["remote"][0] > 2 * results["local"][0]
    benchmark.extra_info["remote_first_us"] = round(
        results["remote"][0] / 1e3, 1)


def test_e5_unified_heap_converges_toward_local(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    unified_last = results["unified+runtime"][-1]
    remote_last = results["remote"][-1]
    local_last = results["local"][-1]
    assert unified_last < remote_last
    assert unified_last < 3 * local_last
    benchmark.extra_info["unified_last_us"] = round(unified_last / 1e3, 1)


def main() -> None:
    results = collect()
    rows = []
    for mode, times in results.items():
        rows.append([mode] + [t / 1e3 for t in times])
    print_table(
        f"E5 (extension): BFS over a {VERTICES}-vertex CSR graph, "
        f"{TRAVERSALS} traversals (us each)",
        ["placement"] + [f"pass {i}" for i in range(TRAVERSALS)],
        rows)


if __name__ == "__main__":
    main()
