"""Extension experiment E5: graph traversal over fabric memory.

Pointer-heavy traversal is the workload far memory hurts most — the
next access depends on the last, so neither prefetching nor bandwidth
helps.  The builder lives in :mod:`repro.experiments.defs.movement`
(experiment ``graph_far_memory``); this script is its benchmark/CLI
wrapper.
"""

from __future__ import annotations

import sys
from typing import Dict, List

from repro.experiments import render, run_summary

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import memoize


@memoize
def collect() -> Dict[str, List[float]]:
    return run_summary("graph_far_memory")["modes"]


def test_e5_first_remote_traversal_pays_fabric_latency(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    assert results["remote"][0] > 2 * results["local"][0]
    benchmark.extra_info["remote_first_us"] = round(
        results["remote"][0] / 1e3, 1)


def test_e5_unified_heap_converges_toward_local(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    unified_last = results["unified+runtime"][-1]
    remote_last = results["remote"][-1]
    local_last = results["local"][-1]
    assert unified_last < remote_last
    assert unified_last < 3 * local_last
    benchmark.extra_info["unified_last_us"] = round(unified_last / 1e3, 1)


def main() -> None:
    render("graph_far_memory", summary={"modes": collect()})


if __name__ == "__main__":
    main()
