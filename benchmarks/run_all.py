#!/usr/bin/env python
"""Perf-regression harness: run the experiment suite and record it.

Runs the kernel microbenchmark plus the headline experiments (Table 2
hierarchy, C2 PCIe interference, A1 movement ablation), checks that the
paper-shape invariants still hold (remote/local latency ~10x, PCIe
contention grows with hosts, managed movement beats naive sync), and
writes ``BENCH_<n>.json`` in the repository root with wall-clock,
events and events/sec per experiment — the perf trajectory later PRs
append to.

Usage::

    PYTHONPATH=src python benchmarks/run_all.py           # full + BENCH_<n>.json
    PYTHONPATH=src python benchmarks/run_all.py --smoke   # quick CI pass, no file

The harness intentionally asserts only *shape* invariants (ordering and
coarse magnitude), not exact latencies: exact bit-identity for fixed
seeds is covered by ``tests/test_determinism.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
from pathlib import Path
from time import perf_counter
from typing import Callable, List, Optional, Tuple

_HERE = Path(__file__).resolve().parent
sys.path.insert(0, str(_HERE))
sys.path.insert(0, str(_HERE.parent / "src"))

from repro.experiments import (ExperimentSpec, run_experiment,  # noqa: E402
                               run_summary)
from repro.sim import Environment, total_events_processed  # noqa: E402
from repro.sim.engine import batch_default, set_batch_default  # noqa: E402

#: Seed-engine events/sec on this microbenchmark (200 procs x 2000
#: steps), recorded when the fast path landed.  Machine-dependent, so
#: the speedup is reported for trend-keeping, not asserted.
SEED_KERNEL_EVENTS_PER_SEC = 490_000.0


def _timed(fn: Callable) -> Tuple[object, float, int]:
    """Run ``fn`` and return (result, wall seconds, kernel events)."""
    events0 = total_events_processed()
    t0 = perf_counter()
    result = fn()
    wall = perf_counter() - t0
    return result, wall, total_events_processed() - events0


def kernel_microbench(procs: int, steps: int) -> dict:
    """The canonical hot-path shape: N processes ticking in lockstep."""
    env = Environment()

    def looper():
        timeout = env.timeout
        for _ in range(steps):
            yield timeout(1.0)

    for _ in range(procs):
        env.process(looper())
    env.run()
    return env.stats


def next_bench_path(root: Path) -> Path:
    taken = []
    for existing in root.glob("BENCH_*.json"):
        suffix = existing.stem.split("_", 1)[1]
        if suffix.isdigit():
            taken.append(int(suffix))
    n = max(taken) + 1 if taken else 1
    # Walk past any non-numeric squatters (BENCH_2b.json) so an
    # existing file is never overwritten.
    while (root / f"BENCH_{n}.json").exists():
        n += 1
    return root / f"BENCH_{n}.json"


def git_sha(root: Path) -> Optional[str]:
    """The current commit, so a BENCH file is traceable to the tree."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=root, check=True,
            capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha or None


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="reduced sizes, no BENCH file (CI gate)")
    parser.add_argument("--out", type=Path, default=None,
                        help="output path (default: next BENCH_<n>.json)")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker count recorded in the BENCH "
                             "metadata (the harness itself is serial; "
                             "pass the value used for any companion "
                             "`repro sweep` runs)")
    parser.add_argument("--no-batch", action="store_true",
                        help="run the whole suite with batched "
                             "dispatch (and the vectorized fabric "
                             "paths) disabled")
    args = parser.parse_args(argv)
    if args.no_batch:
        set_batch_default(False)

    experiments = []
    failures: List[str] = []

    def check(name: str, ok: bool) -> None:
        print(f"  [{'ok' if ok else 'FAIL'}] {name}")
        if not ok:
            failures.append(name)

    def record(name: str, wall: float, events: int, detail) -> None:
        rate = events / wall if wall > 0 else 0.0
        experiments.append({
            "name": name,
            "wall_s": round(wall, 4),
            "events": events,
            "events_per_sec": round(rate, 1),
            "detail": detail,
        })
        print(f"{name}: {wall:.3f}s wall, {events:,} events, "
              f"{rate:,.0f} events/sec")

    # -- kernel microbenchmark -------------------------------------------
    procs, steps = (50, 200) if args.smoke else (200, 2000)
    # Best-of-5: this container's CPU clock drifts by ~1.5x between
    # runs; more rounds make the recorded peak less of a lottery.
    rounds = 1 if args.smoke else 5
    best = None
    for _ in range(rounds):
        stats, wall, events = _timed(lambda: kernel_microbench(procs, steps))
        rate = events / wall
        if best is None or rate > best[0]:
            best = (rate, wall, events, stats)
    rate, wall, events, stats = best
    speedup = rate / SEED_KERNEL_EVENTS_PER_SEC
    record("kernel_microbench", wall, events, {
        "procs": procs,
        "steps": steps,
        "best_of": rounds,
        "peak_queue_depth": stats["peak_queue_depth"],
        "pooled_timeouts": stats["pooled_timeouts"],
        "batch": stats["batch"],
        "events_elided": stats["events_elided"],
        "pool_limit": stats["pool_limit"],
        "pool_hits": stats["pool_hits"],
        "pool_misses": stats["pool_misses"],
        "seed_events_per_sec_recorded": SEED_KERNEL_EVENTS_PER_SEC,
        "speedup_vs_seed": round(speedup, 2),
    })
    check("kernel_pool_filled", stats["pooled_timeouts"] > 0)

    # -- batched dispatch: bit-identity + no-regression gate --------------
    # The same kernel microbench and one fabric-heavy experiment, run
    # with batching off and on.  Event counts and the experiment's full
    # result document must be identical (the documents carry no wall
    # clocks, so byte-comparison is exact); the batched kernel must not
    # be slower than scalar dispatch.
    identity_name = "pcie_interleave"
    identity_params = ({"reads": 6, "bulk_writes": 10} if args.smoke
                       else {})
    identity_spec = ExperimentSpec(experiment=identity_name,
                                   params=identity_params)
    prev_batch = batch_default()
    try:
        # Interleave scalar/batched rounds back-to-back so CPU
        # frequency drift hits both modes equally, then keep the best
        # round per mode.
        kernel_best = {False: None, True: None}
        for _ in range(max(rounds, 3)):
            for mode in (False, True):
                set_batch_default(mode)
                _, k_wall, k_events = _timed(
                    lambda: kernel_microbench(procs, steps))
                k_rate = k_events / k_wall if k_wall > 0 else 0.0
                if (kernel_best[mode] is None
                        or k_rate > kernel_best[mode][0]):
                    kernel_best[mode] = (k_rate, k_wall, k_events)
        docs = {}
        for mode in (False, True):
            set_batch_default(mode)
            docs[mode] = _timed(lambda: run_experiment(identity_spec))
    finally:
        set_batch_default(prev_batch)
    rate_off, _, events_off = kernel_best[False]
    rate_on, wall_on, events_on = kernel_best[True]
    doc_off, wall_off, dev_off = docs[False]
    doc_on, _, dev_on = docs[True]
    record("batch_dispatch_smoke", wall_on, events_on, {
        "kernel_events_per_sec_scalar": round(rate_off, 1),
        "kernel_events_per_sec_batched": round(rate_on, 1),
        "kernel_batched_vs_scalar":
            round(rate_on / rate_off, 3) if rate_off else 0.0,
        "identity_experiment": identity_name,
        "identity_model_events_scalar": dev_off,
        "identity_model_events_batched": dev_on,
    })
    check("batch_kernel_events_identical", events_on == events_off)
    check("batch_model_events_identical", dev_on == dev_off)
    check("batch_experiment_doc_identical",
          json.dumps(doc_on, sort_keys=True)
          == json.dumps(doc_off, sort_keys=True))
    check("batch_not_slower_than_scalar", rate_on >= rate_off)

    # -- T2: memory-hierarchy latency matrix -----------------------------
    rows, wall, events = _timed(
        lambda: run_summary("table2_hierarchy")["rows"])
    by_key = {(r["level"], r["op"]): r["latency_ns"] for r in rows}
    ratio = by_key[("remote", "read")] / by_key[("local", "read")]
    record("t2_hierarchy", wall, events, {
        "remote_read_ns": by_key[("remote", "read")],
        "local_read_ns": by_key[("local", "read")],
        "remote_local_ratio": round(ratio, 2),
    })
    check("t2_remote_local_ratio_about_10x", 5.0 <= ratio <= 30.0)
    check("t2_l1_fastest", by_key[("l1", "read")] < by_key[("local", "read")])

    # -- C2: PCIe interference sweep -------------------------------------
    rows, wall, events = _timed(
        lambda: run_summary("pcie_interference")["rows"])
    added = {r["hosts"]: r["added_ns"] for r in rows}
    record("c2_pcie_interference", wall, events,
           {"added_ns_by_hosts": {str(k): v for k, v in added.items()}})
    check("c2_no_interference_alone", added[1] == 0.0)
    check("c2_contention_monotonic",
          all(added[a] <= added[b]
              for a, b in zip(sorted(added), sorted(added)[1:])))
    check("c2_added_at_16_hosts_in_range", 300.0 <= added[16] <= 3000.0)

    # -- A1: data-movement ablation --------------------------------------
    results, wall, events = _timed(
        lambda: run_summary("dp1_movement")["modes"])
    record("a1_movement_ablation", wall, events, results)
    check("a1_managed_beats_naive", results["managed"] < results["naive-sync"])
    check("a1_prefetch_beats_naive",
          results["prefetch"] < results["naive-sync"])

    # -- telemetry: off-path overhead ------------------------------------
    # The same instrumented scenario, telemetry absent vs. attached.
    # The off path must stay within benchmark noise of the fast path
    # (every hook is one is-None branch); the on path is reported for
    # the trend, not asserted — it pays for real event recording.
    from repro.telemetry.scenarios import run_scenario
    t_rounds = 2 if args.smoke else 5
    scenario = "interleave"
    off_best = on_best = None
    off_events = on_events = 0
    for _ in range(t_rounds):
        _, wall_off, ev_off = _timed(
            lambda: run_scenario(scenario, telemetry=False))
        _, wall_on, ev_on = _timed(
            lambda: run_scenario(scenario, telemetry=True))
        if off_best is None or wall_off < off_best:
            off_best, off_events = wall_off, ev_off
        if on_best is None or wall_on < on_best:
            on_best, on_events = wall_on, ev_on
    on_ratio = on_best / off_best if off_best > 0 else 0.0
    record("telemetry_overhead", off_best, off_events, {
        "scenario": scenario,
        "best_of": t_rounds,
        "off_wall_s": round(off_best, 4),
        "on_wall_s": round(on_best, 4),
        "on_vs_off": round(on_ratio, 3),
        "model_events_off": off_events,
        "model_events_on": on_events,
    })
    check("telemetry_off_within_noise_of_fast_path", on_ratio < 3.0)

    # -- causal tracing: on-path overhead --------------------------------
    # Telemetry-on is the baseline here: causal tracing rides on top of
    # it, so the interesting ratios are full tracing (every transaction
    # rooted) and 1/16 sampling over the telemetry-on wall clock.  The
    # generous bound just catches pathological blowups; the precise
    # no-perturbation property (bit-identical schedules) is pinned by
    # tests, not wall clocks.
    full_best = sampled_best = None
    roots_full = roots_sampled = 0
    for _ in range(t_rounds):
        result, wall_full, _ = _timed(
            lambda: run_scenario(scenario, causal=True))
        if full_best is None or wall_full < full_best:
            full_best, roots_full = wall_full, result.causal.started
        result, wall_sampled, _ = _timed(
            lambda: run_scenario(scenario, causal=True, causal_sample=16))
        if sampled_best is None or wall_sampled < sampled_best:
            sampled_best = wall_sampled
            roots_sampled = result.causal.started
    full_ratio = full_best / on_best if on_best > 0 else 0.0
    sampled_ratio = sampled_best / on_best if on_best > 0 else 0.0
    record("causal_overhead", full_best, on_events, {
        "scenario": scenario,
        "best_of": t_rounds,
        "telemetry_on_wall_s": round(on_best, 4),
        "causal_full_wall_s": round(full_best, 4),
        "causal_sampled_wall_s": round(sampled_best, 4),
        "full_vs_telemetry_on": round(full_ratio, 3),
        "sampled_vs_telemetry_on": round(sampled_ratio, 3),
        "sample": 16,
        "roots_full": roots_full,
        "roots_sampled": roots_sampled,
    })
    check("causal_full_tracing_bounded", full_ratio < 3.0)
    check("causal_sampling_reduces_roots", roots_sampled < roots_full)

    # -- streaming health: overhead + schedule identity -------------------
    # Baseline: the causal run plus the offline `repro why` report —
    # the post-hoc equivalent of everything the streaming monitor
    # computes.  Streaming the same analysis window-by-window (windowed
    # series, incremental attribution, SLO/anomaly passes) must cost at
    # most 5% more wall clock, and the monitored run must process
    # exactly as many kernel events as the causal run it observes.
    from repro.telemetry.health import run_health
    health_scenario = "starvation"
    base_best = health_best = None
    base_events = health_events = 0
    health_windows = health_alerts = 0
    for _ in range(t_rounds):
        result, wall_base, ev_base = _timed(
            lambda: run_scenario(health_scenario, causal=True))
        _, wall_report, _ = _timed(result.attribution_report)
        wall_base += wall_report
        if base_best is None or wall_base < base_best:
            base_best, base_events = wall_base, ev_base
        (result, report), wall_health, ev_health = _timed(
            lambda: run_health(health_scenario))
        if health_best is None or wall_health < health_best:
            health_best, health_events = wall_health, ev_health
            health_windows = len(report["windows"])
            health_alerts = sum(len(alert["episodes"])
                                for slo in report["slos"]
                                for alert in slo["alerts"])
    health_ratio = health_best / base_best if base_best > 0 else 0.0
    record("health_overhead", health_best, health_events, {
        "scenario": health_scenario,
        "best_of": t_rounds,
        "baseline": "causal run + offline attribution report",
        "baseline_wall_s": round(base_best, 4),
        "health_wall_s": round(health_best, 4),
        "health_vs_baseline": round(health_ratio, 3),
        "model_events_baseline": base_events,
        "model_events_health": health_events,
        "windows": health_windows,
        "alert_episodes": health_alerts,
    })
    check("health_overhead_bounded", health_ratio <= 1.05)
    check("health_model_events_identical",
          health_events == base_events)
    check("health_alert_fired", health_alerts >= 1)

    # -- report ----------------------------------------------------------
    payload = {
        "schema": 1,
        "python_version": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "workers": args.workers,
        "batch": batch_default(),
        "git_sha": git_sha(_HERE.parent),
        "smoke": args.smoke,
        "experiments": experiments,
        "invariant_failures": failures,
    }
    if args.smoke:
        print("smoke run: BENCH file not written")
    else:
        out = args.out or next_bench_path(_HERE.parent)
        out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {out}")
    if failures:
        print(f"FAILED invariants: {', '.join(failures)}")
        return 1
    print("all invariants hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
