"""Experiment C7: credit starvation back-propagates across switches.

Paper (section 3): "Credit starvation can backpropagate to upstreamed
switch ports under scale-out scenarios.  Such congestion can spread
across a large victim area, yielding more credit waste and bandwidth
loss."

Topology: host -> root switch -> leaf switch -> {hot device, victim
device}.  A flood congests the *hot* device behind the leaf switch;
the victim flow — which shares only the root->leaf trunk — is measured.
With one shared (FIFO) staging class the backed-up hot traffic fills
the trunk and leaf buffering and the victim's latency explodes; with
per-class fair queueing the spread is contained.
"""

from __future__ import annotations

import sys
from typing import Dict

from repro import params
from repro.fabric import Channel, Packet, PacketKind
from repro.pcie import FabricManager, PortRole, Topology
from repro.sim import Environment, StatSeries

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import memoize, print_table, run_proc

VICTIM_READS = 40
FLOOD_WRITES = 600


def run_case(scheduler: str, with_flood: bool) -> StatSeries:
    env = Environment()
    topo = Topology(env, scheduler=scheduler)
    topo.add_switch("root")
    topo.add_switch("leaf", scheduler_capacity=32)
    topo.connect_switches("root", "leaf")
    for name in ("victim_host", "flood_host"):
        topo.add_endpoint(name)
        topo.connect_endpoint("root", name, role=PortRole.UPSTREAM)
    topo.add_endpoint("hot_dev")
    # The hot device is slow and narrow: the congestion source.
    topo.connect_endpoint("leaf", "hot_dev",
                          link_params=params.LinkParams(lanes=4,
                                                        credits=8))
    topo.add_endpoint("victim_dev")
    topo.connect_endpoint("leaf", "victim_dev")
    FabricManager(topo).configure()

    def slow_handler(request):
        yield env.timeout(500.0)   # a very slow endpoint
        if request.kind is not PacketKind.MEM_RD:
            return None
        return request.make_response()

    def fast_handler(request):
        yield env.timeout(10.0)
        if request.kind is not PacketKind.MEM_RD:
            return None
        return request.make_response()

    topo.port_of("hot_dev").serve(slow_handler, concurrency=1)
    topo.port_of("victim_dev").serve(fast_handler, concurrency=8)
    stats = StatSeries("victim")

    def victim():
        port = topo.port_of("victim_host")
        dst = topo.endpoints["victim_dev"].global_id
        for _ in range(VICTIM_READS):
            packet = Packet(kind=PacketKind.MEM_RD,
                            channel=Channel.CXL_MEM,
                            src=port.port_id, dst=dst, nbytes=64)
            start = env.now
            yield from port.request(packet)
            stats.add(env.now - start, time=env.now)
            yield env.timeout(200.0)

    def flood():
        port = topo.port_of("flood_host")
        dst = topo.endpoints["hot_dev"].global_id
        for _ in range(FLOOD_WRITES):
            packet = Packet(kind=PacketKind.MEM_WR,
                            channel=Channel.CXL_IO,
                            src=port.port_id, dst=dst, nbytes=1024)
            yield from port.post(packet)

    if with_flood:
        env.process(flood())
    run_proc(env, victim())
    return stats


@memoize
def collect() -> Dict[str, StatSeries]:
    return {
        "fifo quiet": run_case("fifo", with_flood=False),
        "fifo congested": run_case("fifo", with_flood=True),
        "fair congested": run_case("fair", with_flood=True),
    }


def test_c7_congestion_spreads_to_victim_under_fifo(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    quiet = results["fifo quiet"].mean
    congested = results["fifo congested"].mean
    # The victim shares no endpoint with the flood, yet suffers badly.
    assert congested > 3.0 * quiet
    benchmark.extra_info["quiet_ns"] = round(quiet, 1)
    benchmark.extra_info["congested_ns"] = round(congested, 1)


def test_c7_per_class_queueing_contains_the_spread(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    fair = results["fair congested"].mean
    fifo = results["fifo congested"].mean
    quiet = results["fifo quiet"].mean
    assert fair < fifo / 2
    assert fair < 3.0 * quiet
    benchmark.extra_info["fair_ns"] = round(fair, 1)


def main() -> None:
    results = collect()
    quiet = results["fifo quiet"].mean
    rows = [[case, stats.mean, stats.p99, stats.mean / quiet]
            for case, stats in results.items()]
    print_table("C7: victim-flow latency when a sibling device is "
                "congested (2-level tree)",
                ["case", "mean ns", "p99 ns", "vs quiet"], rows)


if __name__ == "__main__":
    main()
