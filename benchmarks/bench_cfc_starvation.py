"""Experiment C7: credit starvation back-propagates across switches.

Paper (section 3): "Credit starvation can backpropagate to upstreamed
switch ports under scale-out scenarios.  Such congestion can spread
across a large victim area, yielding more credit waste and bandwidth
loss."

The builder lives in :mod:`repro.experiments.defs.cfc` (experiment
``cfc_starvation``); this script is its benchmark/CLI wrapper.
"""

from __future__ import annotations

import sys
from typing import Dict

from repro.experiments import render, run_summary

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import memoize


@memoize
def collect() -> Dict[str, dict]:
    return run_summary("cfc_starvation")["cases"]


def test_c7_congestion_spreads_to_victim_under_fifo(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    quiet = results["fifo quiet"]["mean_ns"]
    congested = results["fifo congested"]["mean_ns"]
    # The victim shares no endpoint with the flood, yet suffers badly.
    assert congested > 3.0 * quiet
    benchmark.extra_info["quiet_ns"] = round(quiet, 1)
    benchmark.extra_info["congested_ns"] = round(congested, 1)


def test_c7_per_class_queueing_contains_the_spread(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    fair = results["fair congested"]["mean_ns"]
    fifo = results["fifo congested"]["mean_ns"]
    quiet = results["fifo quiet"]["mean_ns"]
    assert fair < fifo / 2
    assert fair < 3.0 * quiet
    benchmark.extra_info["fair_ns"] = round(fair, 1)


def main() -> None:
    render("cfc_starvation", summary={"cases": collect()})


if __name__ == "__main__":
    main()
