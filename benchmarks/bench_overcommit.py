"""Extension experiment E2: link-layer credit overcommitment.

Section 2.1: the link layer "runs an overcommitment scheme to improve
bandwidth utilization".  The builder lives in
:mod:`repro.experiments.defs.fabric` (experiment ``overcommit``);
this script is its benchmark/CLI wrapper.
"""

from __future__ import annotations

import sys
from typing import Dict

from repro.experiments import render, run_summary

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import memoize


@memoize
def collect() -> Dict[str, Dict[str, float]]:
    return run_summary("overcommit")["factors"]


def test_e2_overcommit_improves_bursty_throughput(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    plain = results["1.0x"]["flits_per_us"]
    over = results["2.0x"]["flits_per_us"]
    assert over > 1.2 * plain
    benchmark.extra_info["gain_2x"] = round(over / plain, 2)


def test_e2_overcommit_costs_buffer_occupancy(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    assert results["3.0x"]["max_rx_occupancy"] > \
        results["1.0x"]["max_rx_occupancy"]
    # Occupancy stays bounded by the overcommitted grant.
    assert results["3.0x"]["max_rx_occupancy"] <= 3 * 8 + 1


def main() -> None:
    render("overcommit", summary={"factors": collect()})


if __name__ == "__main__":
    main()
