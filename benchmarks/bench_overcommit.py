"""Extension experiment E2: link-layer credit overcommitment.

Section 2.1: the link layer "runs an overcommitment scheme to improve
bandwidth utilization".  We quantify when that helps: a receiver that
drains in bursts (service pauses) leaves granted credits idle; an
overcommitted sender keeps the pipe full across the pauses, at the
cost of deeper receiver occupancy.
"""

from __future__ import annotations

import sys
from typing import Dict

from repro import params
from repro.fabric import Channel, LinkLayer, Packet, PacketKind, fragment
from repro.sim import Environment

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import memoize, print_table, run_proc

FLITS = 400
PAUSE_EVERY = 16        # receiver pauses after every 16 flits...
PAUSE_NS = 120.0        # ...for this long (bursty drain)


def throughput(overcommit: float) -> Dict[str, float]:
    env = Environment()
    link = LinkLayer(env, params.LinkParams(credits=8),
                     overcommit=overcommit, name="l0")
    consumed = []

    def producer():
        for i in range(FLITS):
            packet = Packet(kind=PacketKind.MEM_WR,
                            channel=Channel.CXL_MEM, src=0, dst=1,
                            nbytes=0)
            yield link.send(fragment(packet)[0])

    def consumer():
        count = 0
        while count < FLITS:
            flit = yield link.rx.get()
            link.consume(flit)
            count += 1
            consumed.append(env.now)
            if count % PAUSE_EVERY == 0:
                yield env.timeout(PAUSE_NS)

    env.process(producer())
    proc = env.process(consumer())
    run_proc(env, _wait(env, proc))
    elapsed = consumed[-1] - consumed[0]
    return {"flits_per_us": (FLITS - 1) / elapsed * 1e3,
            "max_rx_occupancy": link.max_rx_occupancy}


def _wait(env, proc):
    yield proc


@memoize
def collect() -> Dict[str, Dict[str, float]]:
    return {f"{oc:.1f}x": throughput(oc) for oc in (1.0, 1.5, 2.0, 3.0)}


def test_e2_overcommit_improves_bursty_throughput(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    plain = results["1.0x"]["flits_per_us"]
    over = results["2.0x"]["flits_per_us"]
    assert over > 1.2 * plain
    benchmark.extra_info["gain_2x"] = round(over / plain, 2)


def test_e2_overcommit_costs_buffer_occupancy(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    assert results["3.0x"]["max_rx_occupancy"] > \
        results["1.0x"]["max_rx_occupancy"]
    # Occupancy stays bounded by the overcommitted grant.
    assert results["3.0x"]["max_rx_occupancy"] <= 3 * 8 + 1


def main() -> None:
    results = collect()
    rows = [[factor, r["flits_per_us"], r["max_rx_occupancy"]]
            for factor, r in results.items()]
    print_table(
        "E2 (extension): credit overcommitment vs a bursty receiver "
        f"(8 credits, pause {PAUSE_NS:.0f}ns per {PAUSE_EVERY} flits)",
        ["overcommit", "flits/us", "peak rx occupancy"], rows)


if __name__ == "__main__":
    main()
