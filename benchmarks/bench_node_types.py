"""Experiment S2: difference #2 — the eclectic memory node types.

Runs comparable sharing patterns over the four node flavours of
section 3 and reports what each is good and bad at:

* **CPU-less expander** — cheapest access, but no sharing semantics
  (partitioned);
* **CC-NUMA** — hardware coherence: reads are cheap to share, writes to
  contended lines pay snoop round trips;
* **non-CC NUMA** — expander-speed accesses even when sharing, but the
  device merely counts the cross-host conflicts software must resolve;
* **COMA** — attraction memory: repeated access migrates data to its
  user, so locality improves over time.
"""

from __future__ import annotations

import sys
from typing import Dict

from repro.infra import ClusterSpec, FamSpec, build_cluster
from repro.mem import ComaCluster, NodeKind
from repro.sim import Environment, StatSeries

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import memoize, print_table, run_proc

ROUNDS = 30
SHARED_LINES = 8


def fabric_node_case(kind: NodeKind) -> Dict[str, float]:
    """Two hosts ping-pong writes + reads over a shared region.

    Issued as uncached fabric requests: sharing semantics live at the
    device, and a write-back host cache would otherwise absorb the
    traffic after the first round (difference #1 at work).
    """
    env = Environment()
    cluster = build_cluster(env, ClusterSpec(
        hosts=2, fams=[FamSpec(name="fam", kind=kind,
                               capacity_bytes=1 << 26)]))
    host0 = cluster.host(0)
    host1 = cluster.hosts["host1"]
    dst = cluster.endpoint_id("fam")
    stats = StatSeries(kind.value)

    def op(host, addr, is_write):
        from repro.fabric import Channel, Packet, PacketKind
        packet = Packet(
            kind=PacketKind.MEM_WR if is_write else PacketKind.MEM_RD,
            channel=Channel.CXL_MEM, src=host.port.port_id, dst=dst,
            addr=addr, nbytes=64)
        yield from host.port.request(packet)

    def go():
        for round_index in range(ROUNDS):
            for line in range(SHARED_LINES):
                addr = line * 64
                writer, reader = (host0, host1) if round_index % 2 \
                    else (host1, host0)
                start = env.now
                yield from op(writer, addr, True)
                yield from op(reader, addr, False)
                stats.add(env.now - start, time=env.now)
        return stats

    run_proc(env, go(), horizon=500_000_000_000)
    module = cluster.fam("fam").modules[0]
    snoops = getattr(module, "snoops_issued", 0)
    conflicts = getattr(module, "cross_host_conflicts", 0)
    return {"mean_ns": stats.mean, "snoops": snoops,
            "conflicts": conflicts}


def coma_case() -> Dict[str, float]:
    """The same ping-pong over a 2-node COMA cluster."""
    env = Environment()
    coma = ComaCluster(env, nodes=2, am_capacity_lines=64)
    stats = StatSeries("coma")

    def go():
        for round_index in range(ROUNDS):
            for line in range(SHARED_LINES):
                addr = line * 64
                writer, reader = (0, 1) if round_index % 2 else (1, 0)
                start = env.now
                yield from coma.access(writer, addr, is_write=True)
                yield from coma.access(reader, addr, is_write=False)
                stats.add(env.now - start, time=env.now)
        return stats

    run_proc(env, go())
    return {"mean_ns": stats.mean,
            "invalidations": coma.stats.invalidations,
            "replications": coma.stats.replications}


@memoize
def collect() -> Dict[str, Dict[str, float]]:
    return {
        "cpuless-numa": fabric_node_case(NodeKind.CPULESS_NUMA),
        "cc-numa": fabric_node_case(NodeKind.CC_NUMA),
        "noncc-numa": fabric_node_case(NodeKind.NONCC_NUMA),
        "coma": coma_case(),
    }


def test_s2_coherence_costs_latency(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    # CC-NUMA pays snoop round trips the non-coherent nodes skip.
    assert results["cc-numa"]["mean_ns"] > \
        results["noncc-numa"]["mean_ns"]
    assert results["cc-numa"]["snoops"] > 0
    assert results["cpuless-numa"]["snoops"] == 0
    benchmark.extra_info["cc_mean"] = round(results["cc-numa"]["mean_ns"])
    benchmark.extra_info["noncc_mean"] = round(
        results["noncc-numa"]["mean_ns"])


def test_s2_noncc_surfaces_conflicts_to_software(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    assert results["noncc-numa"]["conflicts"] > 0


def test_s2_coma_attracts_data(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    coma = results["coma"]
    # Ownership ping-pongs: replica writes take mastership and
    # invalidate the other node...
    assert coma["invalidations"] > 0
    # ...and reads replicated toward their users.
    assert coma["replications"] > 0


def main() -> None:
    results = collect()
    rows = []
    for kind, r in results.items():
        extra = ", ".join(f"{k}={v}" for k, v in r.items()
                          if k != "mean_ns")
        rows.append([kind, r["mean_ns"], extra])
    print_table("S2: write->read sharing round over each node type",
                ["node type", "mean round ns", "notes"],
                rows, widths=[14, 14, 44])


if __name__ == "__main__":
    main()
