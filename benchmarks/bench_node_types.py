"""Experiment S2: difference #2 — the eclectic memory node types.

Runs comparable sharing patterns over the four node flavours of
section 3 (CPU-less expander, CC-NUMA, non-CC NUMA, COMA) and reports
what each is good and bad at.  The builder lives in
:mod:`repro.experiments.defs.memory` (experiment ``node_types``); this
script is its benchmark/CLI wrapper.
"""

from __future__ import annotations

import sys
from typing import Dict

from repro.experiments import render, run_summary

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _common import memoize


@memoize
def collect() -> Dict[str, Dict[str, float]]:
    return run_summary("node_types")["kinds"]


def test_s2_coherence_costs_latency(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    # CC-NUMA pays snoop round trips the non-coherent nodes skip.
    assert results["cc-numa"]["mean_ns"] > \
        results["noncc-numa"]["mean_ns"]
    assert results["cc-numa"]["snoops"] > 0
    assert results["cpuless-numa"]["snoops"] == 0
    benchmark.extra_info["cc_mean"] = round(results["cc-numa"]["mean_ns"])
    benchmark.extra_info["noncc_mean"] = round(
        results["noncc-numa"]["mean_ns"])


def test_s2_noncc_surfaces_conflicts_to_software(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    assert results["noncc-numa"]["conflicts"] > 0


def test_s2_coma_attracts_data(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    coma = results["coma"]
    # Ownership ping-pongs: replica writes take mastership and
    # invalidate the other node...
    assert coma["invalidations"] > 0
    # ...and reads replicated toward their users.
    assert coma["replications"] > 0


def main() -> None:
    render("node_types", summary={"kinds": collect()})


if __name__ == "__main__":
    main()
