"""Bit-identity pins for batched dispatch and the vectorized fast paths.

Batched same-timestamp dispatch (``Environment(batch=True)``), the
link layer's vectorized flit transport, the credit-return fast path,
and the switch's batched egress sweep all promise the same thing: the
observable simulation — every timestamp, every counter, and
``events_processed`` itself (elided events are credited in the time
bucket where the scalar path would have dispatched them) — is
bit-identical to the scalar reference loop.  These tests run the same
models both ways and compare, including runs truncated mid-batch by a
``run(until=...)`` horizon.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

from repro import params
from repro.fabric import Channel, Flit, LinkLayer, Packet, PacketKind
from repro.pcie import FabricManager, PortRole, Topology
from repro.pcie.arbitration import (EgressScheduler, FairVcScheduler,
                                    FifoScheduler, PriorityScheduler)
from repro.sim import Environment
from repro.sim.engine import batch_default, set_batch_default
from repro.telemetry.scenarios import (TELEMETRY_SCENARIOS,
                                       run_scenario_build)

np = pytest.importorskip("numpy")


@pytest.fixture(autouse=True)
def _restore_batch_default():
    prev = batch_default()
    yield
    set_batch_default(prev)


# -- telemetry scenarios: summaries and event counts ---------------------


@pytest.mark.parametrize("name", sorted(TELEMETRY_SCENARIOS))
def test_scenario_bit_identical_batch_on_off(name):
    build = TELEMETRY_SCENARIOS[name]
    results = {}
    for batch in (False, True):
        set_batch_default(batch)
        res = run_scenario_build(name, build, telemetry=False)
        results[batch] = (res.summary, res.env._events_processed,
                          res.env.now, res.env.stats["events_elided"])
    assert results[True][:3] == results[False][:3]
    assert results[False][3] == 0   # scalar loop never elides


def test_interleave_fast_paths_actually_engage():
    # The identity guarantee is vacuous if the fast paths never fire:
    # the interleave scenario must take both the credit-return fast
    # path and the egress sweep (a sizeable slice of all its events).
    set_batch_default(True)
    res = run_scenario_build("interleave", TELEMETRY_SCENARIOS["interleave"],
                             telemetry=False)
    stats = res.env.stats
    assert stats["events_elided"] > stats["events_processed"] * 0.1


# -- link layer: vectorized transport ------------------------------------


def _run_link(batch, sizes):
    env = Environment(batch=batch)
    link = LinkLayer(env, vcs=1, name="l0")
    packet = Packet(kind=PacketKind.MEM_WR, channel=Channel.CXL_MEM,
                    src=0, dst=1, nbytes=64)
    deliveries = []

    def rx():
        for _ in range(len(sizes)):
            flit = yield link.rx.get()
            deliveries.append((env.now, flit.size_bytes))
            link.consume(flit)

    for i, size in enumerate(sizes):
        link.send(Flit(packet=packet, index=i, total=len(sizes),
                       size_bytes=size))
    env.process(rx())
    env.run()
    return deliveries, env._events_processed, env.now, \
        env.stats["events_elided"]


def test_link_homogeneous_run_vectorizes_bit_identically():
    sizes = [256] * 24
    scalar = _run_link(False, sizes)
    batched = _run_link(True, sizes)
    assert batched[:3] == scalar[:3]
    assert scalar[3] == 0
    assert batched[3] > 0           # the vector path engaged


def test_link_heterogeneous_flits_fall_back_to_scalar_path():
    # Alternating 64B/256B flits never form a homogeneous run, so the
    # sender must take the per-flit path — with the identical schedule.
    sizes = [64, 256] * 12
    scalar = _run_link(False, sizes)
    batched = _run_link(True, sizes)
    assert batched[:3] == scalar[:3]
    # Only the credit-return fast path elides here (2 events per
    # consume); the 6k-4 transport elisions must be absent.
    assert batched[3] == 2 * len(sizes)


def test_link_transport_key_is_size_and_vc():
    packet = Packet(kind=PacketKind.MEM_RD, channel=Channel.CXL_MEM,
                    src=0, dst=1)
    a = Flit(packet=packet, index=0, total=2, size_bytes=256, vc=0)
    b = Flit(packet=packet, index=1, total=2, size_bytes=256, vc=1)
    assert a.transport_key() == (256, 0)
    assert a.transport_key() != b.transport_key()


# -- switch: batched egress sweep ----------------------------------------


def _run_switch(batch, until=None, scheduler="fifo", writes=12):
    env = Environment(batch=batch)
    topo = Topology(env, scheduler=scheduler)
    topo.add_switch("sw0")
    topo.add_endpoint("src")
    topo.connect_endpoint("sw0", "src", role=PortRole.UPSTREAM)
    topo.add_endpoint("dev")
    topo.connect_endpoint("sw0", "dev",
                          link_params=params.LinkParams(lanes=4))
    FabricManager(topo).configure()

    def handler(request):
        yield env.timeout(params.FAM_ACCESS_NS)
        return None   # posted writes

    topo.port_of("dev").serve(handler, concurrency=4)
    dst = topo.endpoints["dev"].global_id

    def writer():
        port = topo.port_of("src")
        for _ in range(writes):
            packet = Packet(kind=PacketKind.IO_WR, channel=Channel.CXL_IO,
                            src=port.port_id, dst=dst, nbytes=8 * 1024)
            yield from port.post(packet)

    env.process(writer())
    env.run(until=until)
    switch = topo.switches["sw0"]
    ports = sorted((i, p.flits_in, p.flits_out, p.pending)
                   for i, p in switch.ports.items())
    phys = [(p.out_link.phys.flits_sent, p.out_link.phys.bytes_sent)
            for _, p in sorted(switch.ports.items())]
    return (env.now, env._events_processed, switch.flits_forwarded,
            ports, phys, env.stats["events_elided"])


def test_switch_fifo_sweep_bit_identical_and_engages():
    scalar = _run_switch(False)
    batched = _run_switch(True)
    assert batched[:5] == scalar[:5]
    assert scalar[5] == 0
    # 8KB posted writes stage long homogeneous runs at the FIFO
    # egress; the sweep must elide a large share of their events.
    assert batched[5] > batched[1] * 0.1


@pytest.mark.parametrize("until", [1_000.0, 2_500.0, 5_000.0, 9_999.5])
def test_switch_sweep_truncated_run_bit_identical(until):
    # A horizon landing mid-batch must leave counters, port state and
    # the event count exactly where the scalar loop leaves them:
    # elisions are credited per time bucket, never up front.
    scalar = _run_switch(False, until=until)
    batched = _run_switch(True, until=until)
    assert batched[:5] == scalar[:5]


def test_switch_fair_scheduler_bit_identical_without_sweep():
    # FairVc service order can be preempted by later pushes, so it is
    # not batchable: the egress loop must stay scalar (only the
    # credit-return fast path elides) and stay bit-identical.
    scalar = _run_switch(False, scheduler="fair")
    batched = _run_switch(True, scheduler="fair")
    assert batched[:5] == scalar[:5]


def test_only_fifo_scheduler_is_batchable():
    assert FifoScheduler.batchable
    assert not EgressScheduler.batchable
    assert not FairVcScheduler.batchable
    assert not PriorityScheduler.batchable


def test_fifo_plan_is_pure_and_commit_head_pops():
    env = Environment()
    scheduler = FifoScheduler(env, capacity=8)
    packet = Packet(kind=PacketKind.MEM_WR, channel=Channel.CXL_MEM,
                    src=0, dst=1)
    for i in range(4):
        scheduler.push(Flit(packet=packet, index=i, total=4,
                            size_bytes=256))
    env.run()
    run = scheduler.plan_ready_run(3)
    assert [f.index for f in run] == [0, 1, 2]
    assert len(scheduler) == 4          # planning removed nothing
    scheduler.commit_head()
    assert len(scheduler) == 3
    assert scheduler.peek_ready().index == 1


def test_fifo_plan_stops_at_transport_key_change():
    env = Environment()
    scheduler = FifoScheduler(env, capacity=16)
    packet = Packet(kind=PacketKind.MEM_WR, channel=Channel.CXL_MEM,
                    src=0, dst=1)
    for i, size in enumerate([256, 256, 64, 256]):
        scheduler.push(Flit(packet=packet, index=i, total=4,
                            size_bytes=size))
    env.run()
    assert [f.size_bytes for f in scheduler.plan_ready_run(16)] \
        == [256, 256]
    env2 = Environment()
    lone = FifoScheduler(env2, capacity=16)
    lone.push(Flit(packet=packet, index=0, total=1, size_bytes=256))
    env2.run()
    assert lone.peek_ready() is None    # a 1-flit "run" is not a run


# -- kernel primitives the fast paths lean on ----------------------------


def test_timeout_at_lands_on_exact_float():
    # now + (t - now) != t under IEEE-754 for this triple; timeout_at
    # must land on t exactly, not on the round-tripped sum.
    env = Environment()

    def proc():
        yield env.timeout(0.1)
        assert env.now + (0.3 - env.now) != 0.3
        yield env.timeout_at(0.3)
        assert env.now == 0.3

    env.process(proc())
    env.run()


def test_cumsum_reproduces_chained_additions():
    # The vectorized schedules rely on numpy's cumsum accumulating
    # strictly sequentially, exactly like the scalar loop's repeated
    # `now += ser_ns` — pin that (awkward floats on purpose).
    for start, step in [(0.30000000000000004, 0.1),
                        (171649.49999999953, 40.96),
                        (1.0 / 3.0, 2.0 / 7.0)]:
        ends = np.cumsum([start] + [step] * 16)
        acc = start
        for i in range(16):
            acc = acc + step
            assert float(ends[i + 1]) == acc


def test_event_pool_counters_exposed_and_bounded():
    env = Environment(pool_limit=4)

    def looper():
        for _ in range(50):
            yield env.timeout(1.0)

    for _ in range(8):
        env.process(looper())
    env.run()
    stats = env.stats
    assert stats["pool_limit"] == 4
    assert stats["pool_hits"] > 0
    assert stats["pool_misses"] > 0     # 8 concurrent > pool of 4
    assert stats["pooled_timeouts"] <= 4


# -- benchmark harness: BENCH numbering tolerates gaps -------------------


def test_next_bench_path_walks_numbering_gaps(tmp_path):
    repo = Path(__file__).resolve().parent.parent
    if str(repo / "benchmarks") not in sys.path:
        sys.path.insert(0, str(repo / "benchmarks"))
    from run_all import next_bench_path

    assert next_bench_path(tmp_path).name == "BENCH_1.json"
    (tmp_path / "BENCH_1.json").write_text("{}")
    (tmp_path / "BENCH_3.json").write_text("{}")      # gap at 2
    assert next_bench_path(tmp_path).name == "BENCH_4.json"
    (tmp_path / "BENCH_4.json").write_text("{}")
    (tmp_path / "BENCH_5b.json").write_text("{}")     # non-numeric squatter
    assert next_bench_path(tmp_path).name == "BENCH_5.json"
    (tmp_path / "BENCH_5.json").write_text("{}")
    assert next_bench_path(tmp_path).name == "BENCH_6.json"
