"""Tests for the downlink MIMO pipeline (precoding direction)."""

import numpy as np
import pytest

from repro.workloads import (
    DOWNLINK_KERNEL_ORDER,
    DownlinkPipeline,
    MimoConfig,
    downlink_received_bits,
    repetition_decode,
)


def payload(config, seed=3):
    rng = np.random.default_rng(seed)   # fcc: allow[seeded-rng]
    return rng.integers(0, 2,
                        size=config.bits_per_frame // 3).astype(np.int8)


class TestDownlink:
    def test_roundtrip_bit_exact_at_high_snr(self):
        config = MimoConfig(snr_db=25.0)
        pipeline = DownlinkPipeline(config)
        bits = payload(config)
        samples, flops = pipeline.process(bits)
        received = downlink_received_bits(config, samples, snr_db=30.0)
        decoded = repetition_decode(received[:bits.size * 3])
        assert np.array_equal(decoded, bits)
        assert set(flops) == set(DOWNLINK_KERNEL_ORDER)
        assert all(value > 0 for value in flops.values())

    def test_noiseless_roundtrip_exact(self):
        config = MimoConfig()
        pipeline = DownlinkPipeline(config)
        bits = payload(config, seed=9)
        samples, _ = pipeline.process(bits)
        received = downlink_received_bits(config, samples, snr_db=None)
        decoded = repetition_decode(received[:bits.size * 3])
        assert np.array_equal(decoded, bits)

    def test_low_snr_introduces_errors(self):
        config = MimoConfig(seed=5)
        pipeline = DownlinkPipeline(config)
        bits = payload(config)
        samples, _ = pipeline.process(bits)
        received = downlink_received_bits(config, samples, snr_db=-5.0)
        decoded = repetition_decode(received[:bits.size * 3])
        ber = np.mean(decoded != bits)
        assert 0.0 < ber < 0.5

    def test_precoding_pre_cancels_channel(self):
        """After ZF precoding, user u's stream carries only its symbols."""
        config = MimoConfig(users=2, antennas=8, subcarriers=16,
                            data_symbols=1)
        pipeline = DownlinkPipeline(config)
        from repro.workloads.mimo import MimoChannel, qpsk_modulate
        rng = np.random.default_rng(0)   # fcc: allow[seeded-rng]
        bits = rng.integers(0, 2, size=2 * config.users
                            * config.subcarriers).astype(np.int8)
        symbols = qpsk_modulate(bits).reshape(
            config.users, 1, config.subcarriers).transpose(2, 0, 1)
        precoded, _ = pipeline.precode(symbols, MimoChannel(config).h)
        channel = MimoChannel(config)
        received = np.einsum("sau,sat->sut", channel.h, precoded)
        assert np.allclose(received, symbols, atol=1e-8)

    def test_oversized_payload_rejected(self):
        config = MimoConfig()
        pipeline = DownlinkPipeline(config)
        with pytest.raises(ValueError):
            pipeline.modulate(np.zeros(10 * config.bits_per_frame,
                                       dtype=np.int8))

    def test_antenna_sample_shape(self):
        config = MimoConfig()
        pipeline = DownlinkPipeline(config)
        samples, _ = pipeline.process(payload(config))
        assert samples.shape == (config.subcarriers, config.antennas,
                                 config.data_symbols)
