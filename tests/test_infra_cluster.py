"""Integration tests for hosts, adapters, chassis, and the cluster."""

import pytest

from repro import params
from repro.infra import (
    Accelerator,
    ClusterSpec,
    CpuCore,
    FaaSpec,
    FamSpec,
    build_cluster,
)
from repro.fabric import Channel, Packet, PacketKind
from repro.mem import NodeKind
from repro.sim import Environment


def run_proc(env, gen, horizon=100_000_000):
    proc = env.process(gen)
    env.run(until=env.now + horizon)
    assert proc.triggered, "process did not finish"
    if not proc.ok:
        raise proc.value
    return proc.value


class TestClusterBuild:
    def test_default_cluster_shape(self):
        env = Environment()
        cluster = build_cluster(env, ClusterSpec(hosts=2))
        assert len(cluster.hosts) == 2
        assert len(cluster.fams) == 1
        assert cluster.host(0).remote_base("fam0") == cluster.host(0).local_bytes

    def test_describe_renders(self):
        env = Environment()
        cluster = build_cluster(env, ClusterSpec(
            hosts=1, faas=[FaaSpec(name="faa0", accelerators=2)]))
        text = cluster.describe()
        assert "host0" in text and "fam0" in text and "faa0" in text

    def test_invalid_hosts(self):
        env = Environment()
        with pytest.raises(ValueError):
            build_cluster(env, ClusterSpec(hosts=0))


class TestTable2Latencies:
    def test_remote_read_matches_paper(self):
        env = Environment()
        cluster = build_cluster(env, ClusterSpec(hosts=1))
        host = cluster.host(0)
        base = host.remote_base("fam0")

        def go():
            start = env.now
            yield from host.mem.access(base + 0x40000, False)
            return env.now - start

        latency = run_proc(env, go())
        assert latency == pytest.approx(params.REMOTE_MEM_READ_NS, rel=0.02)

    def test_remote_write_matches_paper(self):
        env = Environment()
        cluster = build_cluster(env, ClusterSpec(hosts=1))
        host = cluster.host(0)
        base = host.remote_base("fam0")

        def go():
            start = env.now
            yield from host.mem.access(base + 0x40000, True)
            return env.now - start

        latency = run_proc(env, go())
        assert latency == pytest.approx(params.REMOTE_MEM_WRITE_NS, rel=0.02)

    def test_remote_roughly_10x_slower_than_local(self):
        """Section 3: 'nearly 10x slower than its local complex'."""
        env = Environment()
        cluster = build_cluster(env, ClusterSpec(hosts=1))
        host = cluster.host(0)
        base = host.remote_base("fam0")

        def go():
            start = env.now
            yield from host.mem.access(0x40000, False)
            local = env.now - start
            start = env.now
            yield from host.mem.access(base + 0x40000, False)
            remote = env.now - start
            return remote / local

        ratio = run_proc(env, go())
        assert 8.0 <= ratio <= 20.0

    def test_host_cache_hides_remote_latency(self):
        env = Environment()
        cluster = build_cluster(env, ClusterSpec(hosts=1))
        host = cluster.host(0)
        base = host.remote_base("fam0")

        def go():
            yield from host.mem.access(base, False)
            start = env.now
            level = yield from host.mem.access(base, False)
            return level, env.now - start

        level, latency = run_proc(env, go())
        assert level == "l1"
        assert latency == pytest.approx(params.L1_READ_NS)


class TestCpuCoreMlp:
    def _stream_mops(self, window, level_addrs):
        env = Environment()
        cluster = build_cluster(env, ClusterSpec(hosts=1))
        host = cluster.host(0)
        core = host.core(0)
        trace = [(addr, False) for addr in level_addrs]

        def go():
            stats = yield from core.run(trace, window=window)
            return stats

        stats = run_proc(env, go())
        return stats.mops()

    def test_more_window_more_local_throughput(self):
        # Distinct lines far apart: every access goes to local DRAM
        # (cold misses), so throughput scales with the window.
        addrs = [0x100000 + i * 4096 for i in range(300)]
        w1 = self._stream_mops(1, addrs)
        w4 = self._stream_mops(4, addrs)
        assert w4 > 1.5 * w1

    def test_issue_rate_caps_l1_throughput(self):
        env = Environment()
        cluster = build_cluster(env, ClusterSpec(hosts=1))
        host = cluster.host(0)
        core = host.core(0)
        # Warm one line, then hammer it: every access is an L1 hit.
        trace = [(0x0, False)] * 500

        def go():
            stats = yield from core.run(trace, window=2)
            return stats

        stats = run_proc(env, go())
        # Table 2: L1 read = 357.4 MOPS; issue pacing reproduces it.
        assert stats.mops() == pytest.approx(357.4, rel=0.05)

    def test_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            CpuCore(env, None, issue_ns=0)
        with pytest.raises(ValueError):
            CpuCore(env, None, window=0)


class TestExpanderPartitioning:
    def test_foreign_partition_faults(self):
        env = Environment()
        cluster = build_cluster(env, ClusterSpec(hosts=2))
        fam = cluster.fam("fam0")
        module = fam.modules[0]
        host0 = cluster.host(0)
        host1 = cluster.hosts["host1"]
        half = module.capacity_bytes // 2
        module.partition(host0.port.port_id, 0, half)
        module.partition(host1.port.port_id, half, module.capacity_bytes)
        base = host0.remote_base("fam0")

        def good():
            yield from host0.mem.access(base + 0x1000, True)

        run_proc(env, good())

        def bad():
            # host0 touches host1's half: device must fault.
            yield from host0.mem.access(base + half + 0x1000, True)

        with pytest.raises(PermissionError):
            run_proc(env, bad())
        assert module.faults == 1

    def test_overlapping_partitions_rejected(self):
        env = Environment()
        cluster = build_cluster(env, ClusterSpec(hosts=2))
        module = cluster.fam("fam0").modules[0]
        module.partition(1, 0, 1000)
        with pytest.raises(ValueError):
            module.partition(2, 500, 2000)


class TestCcNumaCoherence:
    def _cc_cluster(self):
        env = Environment()
        cluster = build_cluster(env, ClusterSpec(
            hosts=2,
            fams=[FamSpec(name="ccfam", kind=NodeKind.CC_NUMA,
                          capacity_bytes=1 << 26)]))
        return env, cluster

    def test_write_invalidates_remote_caches(self):
        env, cluster = self._cc_cluster()
        host0, host1 = cluster.host(0), cluster.hosts["host1"]
        base0 = host0.remote_base("ccfam")
        base1 = host1.remote_base("ccfam")
        addr = 0x4000

        def go():
            # host0 reads: line cached at host0, directory says SHARED.
            yield from host0.mem.access(base0 + addr, False)
            assert host0.mem.levels[0].probe(base0 + addr)
            # host1 writes the same line: host0's copy must die.
            yield from host1.mem.access(base1 + addr, True)

        run_proc(env, go())
        module = cluster.fam("ccfam").modules[0]
        assert module.snoops_issued >= 1
        assert host0.fha.snoops_served >= 1
        assert not host0.mem.levels[0].probe(base0 + addr)

    def test_read_read_no_snoops(self):
        env, cluster = self._cc_cluster()
        host0, host1 = cluster.host(0), cluster.hosts["host1"]

        def go():
            yield from host0.mem.access(host0.remote_base("ccfam"), False)
            yield from host1.mem.access(host1.remote_base("ccfam"), False)

        run_proc(env, go())
        assert cluster.fam("ccfam").modules[0].snoops_issued == 0

    def test_coherent_write_costs_more_than_private_write(self):
        env, cluster = self._cc_cluster()
        host0, host1 = cluster.host(0), cluster.hosts["host1"]
        base0 = host0.remote_base("ccfam")
        base1 = host1.remote_base("ccfam")

        def go():
            # Private line: no sharers.
            start = env.now
            yield from host1.mem.access(base1 + 0x10000, True)
            private = env.now - start
            # Contended line: host0 caches it first.
            yield from host0.mem.access(base0 + 0x20000, False)
            start = env.now
            yield from host1.mem.access(base1 + 0x20000, True)
            contended = env.now - start
            return private, contended

        private, contended = run_proc(env, go())
        assert contended > private + 150  # snoop round-trip is visible


class TestNonCcConflictTracking:
    def test_cross_host_conflicts_counted(self):
        env = Environment()
        cluster = build_cluster(env, ClusterSpec(
            hosts=2,
            fams=[FamSpec(name="nfam", kind=NodeKind.NONCC_NUMA,
                          capacity_bytes=1 << 26)]))
        host0, host1 = cluster.host(0), cluster.hosts["host1"]

        def go():
            yield from host0.mem.access(host0.remote_base("nfam"), True)
            yield from host1.mem.access(host1.remote_base("nfam"), True)

        run_proc(env, go())
        module = cluster.fam("nfam").modules[0]
        assert module.cross_host_conflicts == 1
        assert module.snoops_issued if hasattr(module, "snoops_issued") \
            else True  # non-CC never snoops


class TestAccelerators:
    def test_kernel_invocation_roundtrip(self):
        env = Environment()
        cluster = build_cluster(env, ClusterSpec(
            hosts=1, faas=[FaaSpec(name="faa0", accelerators=1)]))
        accel = next(iter(cluster.faa("faa0").accelerators.values()))
        accel.register("double", lambda req: (100.0, req.meta["x"] * 2))
        host = cluster.host(0)
        faa_id = cluster.endpoint_id("faa0")

        def go():
            packet = Packet(kind=PacketKind.IO_WR, channel=Channel.CXL_IO,
                            src=host.port.port_id, dst=faa_id,
                            nbytes=64, meta={"kernel": "double", "x": 21})
            response = yield from host.port.request(packet)
            return response.meta["result"]

        assert run_proc(env, go()) == 42
        assert accel.invocations == 1

    def test_unknown_kernel_faults(self):
        env = Environment()
        cluster = build_cluster(env, ClusterSpec(
            hosts=1, faas=[FaaSpec(name="faa0")]))
        host = cluster.host(0)

        def go():
            packet = Packet(kind=PacketKind.IO_WR, channel=Channel.CXL_IO,
                            src=host.port.port_id,
                            dst=cluster.endpoint_id("faa0"),
                            nbytes=64, meta={"kernel": "nope"})
            response = yield from host.port.request(packet)
            return response.meta

        meta = run_proc(env, go())
        assert meta.get("fault") is True

    def test_duplicate_kernel_rejected(self):
        env = Environment()
        accel = Accelerator(env, "a")
        accel.register("k", lambda req: (0, None))
        with pytest.raises(ValueError):
            accel.register("k", lambda req: (0, None))


class TestMultiModuleChassis:
    def test_addresses_steered_across_modules(self):
        env = Environment()
        cluster = build_cluster(env, ClusterSpec(
            hosts=1,
            fams=[FamSpec(name="fam0", capacity_bytes=1 << 26, modules=4)]))
        fam = cluster.fam("fam0")
        host = cluster.host(0)
        base = host.remote_base("fam0")
        module_size = fam.modules[0].capacity_bytes

        def go():
            for i in range(4):
                yield from host.mem.access(base + i * module_size + 64, True)

        run_proc(env, go())
        assert all(m.writes == 1 for m in fam.modules)

    def test_cc_numa_multi_module_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            build_cluster(env, ClusterSpec(
                hosts=1,
                fams=[FamSpec(name="bad", kind=NodeKind.CC_NUMA,
                              modules=2)]))
