"""Tests for the transaction layer: request/response, serving, ordering."""

import pytest

from repro import params
from repro.fabric import (
    Channel,
    LinkLayer,
    Packet,
    PacketKind,
    TransactionPort,
    format_table1,
    CATALOG,
)
from repro.sim import Environment


def make_pair(env, tag_capacity=256, credits=32):
    """Two ports wired back-to-back over a pair of links."""
    lp = params.LinkParams(credits=credits)
    ab = LinkLayer(env, lp, name="a->b")
    ba = LinkLayer(env, lp, name="b->a")
    a = TransactionPort(env, tx_link=ab, rx_link=ba, port_id=1, name="A",
                        tag_capacity=tag_capacity)
    b = TransactionPort(env, tx_link=ba, rx_link=ab, port_id=2, name="B",
                        tag_capacity=tag_capacity)
    return a, b


def echo_handler(port):
    def handler(request):
        yield port.env.timeout(10.0)  # device-side service time
        return request.make_response()
    return handler


class TestRequestResponse:
    def test_read_roundtrip(self):
        env = Environment()
        a, b = make_pair(env)
        b.serve(echo_handler(b))
        out = []

        def client():
            req = Packet(kind=PacketKind.MEM_RD, channel=Channel.CXL_MEM,
                         src=1, dst=2, addr=0xABC, nbytes=64)
            rsp = yield from a.request(req)
            out.append(rsp)

        env.process(client())
        env.run(until=10_000)
        assert len(out) == 1
        assert out[0].kind is PacketKind.MEM_RD_DATA
        assert out[0].addr == 0xABC
        assert a.responses_received == 1

    def test_many_outstanding_requests_complete(self):
        env = Environment()
        a, b = make_pair(env)
        b.serve(echo_handler(b))
        done = []

        def client(i):
            req = Packet(kind=PacketKind.MEM_RD, channel=Channel.CXL_MEM,
                         src=1, dst=2, addr=i * 64)
            rsp = yield from a.request(req)
            done.append(rsp.addr)

        for i in range(50):
            env.process(client(i))
        env.run(until=100_000)
        assert sorted(done) == [i * 64 for i in range(50)]

    def test_tag_window_limits_outstanding(self):
        env = Environment()
        a, b = make_pair(env, tag_capacity=2)
        b.serve(echo_handler(b))
        done = []

        def client(i):
            req = Packet(kind=PacketKind.MEM_RD, channel=Channel.CXL_MEM,
                         src=1, dst=2, addr=i)
            yield from a.request(req)
            done.append(i)

        for i in range(10):
            env.process(client(i))
        env.run(until=100_000)
        assert len(done) == 10
        assert a.tags.in_use == 0

    def test_non_request_kind_rejected(self):
        env = Environment()
        a, _ = make_pair(env)
        rsp = Packet(kind=PacketKind.MEM_RD_DATA, channel=Channel.CXL_MEM,
                     src=1, dst=2)

        def client():
            yield from a.request(rsp)

        proc = env.process(client())
        env.run(until=100)
        assert proc.triggered and not proc.ok
        assert isinstance(proc.value, ValueError)

    def test_post_does_not_wait_for_response(self):
        env = Environment()
        a, b = make_pair(env)
        seen = []

        def sink(request):
            seen.append(request)
            yield env.timeout(0)
            return None
        b.serve(sink)
        times = []

        def client():
            pkt = Packet(kind=PacketKind.IO_WR, channel=Channel.CXL_IO,
                         src=1, dst=2, nbytes=64)
            yield from a.post(pkt)
            times.append(env.now)

        env.process(client())
        env.run(until=10_000)
        assert len(seen) == 1
        assert times[0] < 10  # returned as soon as flits were queued

    def test_double_serve_rejected(self):
        env = Environment()
        _, b = make_pair(env)
        b.serve(echo_handler(b))
        from repro.sim import SimulationError
        with pytest.raises(SimulationError):
            b.serve(echo_handler(b))

    def test_write_payload_takes_longer_than_read_request(self):
        env = Environment()
        a, b = make_pair(env)
        b.serve(echo_handler(b))
        latencies = {}

        def client(kind, nbytes, label):
            req = Packet(kind=kind, channel=Channel.CXL_MEM, src=1, dst=2,
                         nbytes=nbytes)
            start = env.now
            yield from a.request(req)
            latencies[label] = env.now - start

        def seq():
            yield env.process(client(PacketKind.MEM_RD, 64, "read"))
            yield env.process(client(PacketKind.MEM_WR, 16 * 1024, "bigwrite"))

        env.process(seq())
        env.run(until=1_000_000)
        assert latencies["bigwrite"] > latencies["read"]


class TestChannelSeparation:
    def test_io_and_mem_use_different_vcs(self):
        env = Environment()
        a, b = make_pair(env, credits=4)
        b.serve(echo_handler(b))
        finished = []

        def bulk():
            req = Packet(kind=PacketKind.IO_WR, channel=Channel.CXL_IO,
                         src=1, dst=2, nbytes=16 * 1024)
            yield from a.request(req)
            finished.append(("bulk", env.now))

        def small():
            yield env.timeout(1.0)  # start after bulk began
            req = Packet(kind=PacketKind.MEM_RD, channel=Channel.CXL_MEM,
                         src=1, dst=2, nbytes=64)
            yield from a.request(req)
            finished.append(("small", env.now))

        env.process(bulk())
        env.process(small())
        env.run(until=1_000_000)
        order = [name for name, _ in finished]
        # The 64B read must not wait for the whole 16KB write: VC
        # separation lets it finish first.
        assert order[0] == "small"


class TestCatalog:
    def test_catalog_has_four_fabrics(self):
        assert len(CATALOG) == 4
        names = {s.interconnect for s in CATALOG}
        assert names == {"Gen-Z", "CAPI/OpenCAPI", "CCIX", "CXL"}

    def test_merged_flags(self):
        merged = {s.interconnect for s in CATALOG if s.merged_into_cxl}
        assert merged == {"Gen-Z", "CAPI/OpenCAPI"}

    def test_format_table1_renders(self):
        text = format_table1()
        assert "CXL" in text and "Gen-Z" in text
        assert len(text.splitlines()) >= 6
