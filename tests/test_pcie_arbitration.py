"""Tests for egress scheduling disciplines."""

import pytest

from repro.fabric import Channel, Packet, PacketKind
from repro.fabric.flit import Flit
from repro.pcie import FairVcScheduler, FifoScheduler, PriorityScheduler, make_scheduler
from repro.sim import Environment


def flit(vc=0, size=68, prio=None, dst=1):
    meta = {} if prio is None else {"prio": prio}
    pkt = Packet(kind=PacketKind.MEM_WR, channel=Channel.CXL_MEM,
                 src=0, dst=dst, nbytes=64, meta=meta)
    return Flit(packet=pkt, index=0, total=1, size_bytes=size, vc=vc)


def drain(env, scheduler, n):
    """Pre-condition: all pushes already completed (run the env first)."""
    out = []

    def run():
        for _ in range(n):
            item = yield from scheduler.pop()
            out.append(item)

    env.process(run())
    env.run(until=env.now + 1_000)
    return out


def fill(env, scheduler, flits):
    def feed():
        for f in flits:
            yield scheduler.push(f)

    env.process(feed())
    env.run(until=env.now + 1)


class TestFifoScheduler:
    def test_pure_arrival_order(self):
        env = Environment()
        sched = FifoScheduler(env)
        flits = [flit(vc=i % 2) for i in range(6)]
        fill(env, sched, flits)
        assert drain(env, sched, 6) == flits

    def test_capacity_backpressure(self):
        env = Environment()
        sched = FifoScheduler(env, capacity=2)
        accepted = []

        def feed():
            for i in range(5):
                yield sched.push(flit())
                accepted.append(i)

        env.process(feed())
        env.run(until=100)
        assert accepted == [0, 1]  # third push blocks

    def test_invalid_capacity(self):
        env = Environment()
        with pytest.raises(ValueError):
            FifoScheduler(env, capacity=0)


class TestFairVcScheduler:
    def test_small_vc_not_starved_by_bulk_vc(self):
        env = Environment()
        sched = FairVcScheduler(env, capacity=1000)
        bulk = [flit(vc=1, size=256) for _ in range(8)]
        small = [flit(vc=0, size=68) for _ in range(8)]
        # All bulk arrives (and queues) before the small flits.
        fill(env, sched, bulk + small)
        out = drain(env, sched, 16)
        # Fair queueing must interleave: the last small flit should not
        # be behind all bulk flits.
        position_last_small = max(i for i, f in enumerate(out) if f.vc == 0)
        assert position_last_small < 15

    def test_weights_bias_service(self):
        env = Environment()
        sched = FairVcScheduler(env, capacity=1000,
                                weights={0: 4.0, 1: 1.0})
        interleaved = []
        for _ in range(8):
            interleaved.append(flit(vc=0))
            interleaved.append(flit(vc=1))
        fill(env, sched, interleaved)
        out = drain(env, sched, 16)
        first_half_vc0 = sum(1 for f in out[:8] if f.vc == 0)
        assert first_half_vc0 >= 5  # the weighted VC dominates early service


class TestPriorityScheduler:
    def test_high_priority_first(self):
        env = Environment()
        sched = PriorityScheduler(env)
        low = flit(prio=0)
        high = flit(prio=10)
        fill(env, sched, [low, high])
        out = drain(env, sched, 2)
        assert out == [high, low]

    def test_fifo_within_same_priority(self):
        env = Environment()
        sched = PriorityScheduler(env)
        flits = [flit(prio=5) for _ in range(4)]
        fill(env, sched, flits)
        assert drain(env, sched, 4) == flits


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("fifo", FifoScheduler),
        ("fair", FairVcScheduler),
        ("priority", PriorityScheduler),
    ])
    def test_known_names(self, name, cls):
        env = Environment()
        assert isinstance(make_scheduler(name, env), cls)

    def test_unknown_name(self):
        env = Environment()
        with pytest.raises(ValueError):
            make_scheduler("wrr", env)
