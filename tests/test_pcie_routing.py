"""Tests for PBR/HBR addressing and routing tables."""

import pytest

from repro.pcie import MAX_PBR_IDS, PbrId, RoutingTable


class TestPbrId:
    def test_global_id_roundtrip(self):
        pbr = PbrId(domain=3, local=77)
        assert PbrId.from_global(pbr.global_id) == pbr

    def test_twelve_bit_range_enforced(self):
        PbrId(domain=0, local=MAX_PBR_IDS - 1)
        with pytest.raises(ValueError):
            PbrId(domain=0, local=MAX_PBR_IDS)
        with pytest.raises(ValueError):
            PbrId(domain=0, local=-1)

    def test_negative_domain_rejected(self):
        with pytest.raises(ValueError):
            PbrId(domain=-1, local=0)

    def test_global_id_packs_domain_above_12_bits(self):
        pbr = PbrId(domain=2, local=5)
        assert pbr.global_id == (2 << 12) | 5

    def test_ordering_and_hash(self):
        a, b = PbrId(0, 1), PbrId(0, 2)
        assert a < b
        assert len({a, b, PbrId(0, 1)}) == 2


class TestRoutingTable:
    def test_exact_match_preferred(self):
        table = RoutingTable(switch_domain=0)
        dst = PbrId(0, 9)
        table.add_endpoint(dst, egress_port=4)
        table.set_default(0)
        assert table.lookup(dst) == 4

    def test_domain_route_for_foreign_destination(self):
        table = RoutingTable(switch_domain=0)
        table.add_domain(1, egress_port=2)
        assert table.lookup(PbrId(1, 123)) == 2

    def test_exact_overrides_domain_route(self):
        table = RoutingTable(switch_domain=0)
        table.add_domain(1, egress_port=2)
        table.add_endpoint(PbrId(1, 5), egress_port=7)
        assert table.lookup(PbrId(1, 5)) == 7
        assert table.lookup(PbrId(1, 6)) == 2

    def test_domain_route_to_own_domain_rejected(self):
        table = RoutingTable(switch_domain=0)
        with pytest.raises(ValueError):
            table.add_domain(0, egress_port=1)

    def test_no_route_raises(self):
        table = RoutingTable(switch_domain=0)
        with pytest.raises(KeyError):
            table.lookup(PbrId(0, 1))
        assert PbrId(0, 1) not in table

    def test_default_route_as_last_resort(self):
        table = RoutingTable(switch_domain=0)
        table.set_default(9)
        assert table.lookup(PbrId(5, 5)) == 9

    def test_entries_enumeration(self):
        table = RoutingTable(switch_domain=0)
        table.add_endpoint(PbrId(0, 1), 1)
        table.add_domain(2, 3)
        table.set_default(0)
        kinds = [kind for kind, _, _ in table.entries()]
        assert kinds == ["pbr", "hbr", "default"]
        assert len(table) == 2
