"""Tests for trace generators, KV store, graph, and MIMO workloads."""

import numpy as np
import pytest

from repro.core import MovementOrchestrator, UnifiedHeap
from repro.infra import ClusterSpec, build_cluster
from repro.sim import Environment, SimRng
from repro.workloads import (
    CsrGraph,
    KvStore,
    MimoChannel,
    MimoConfig,
    UplinkPipeline,
    qpsk_demodulate,
    qpsk_modulate,
    random_graph,
    repetition_decode,
    repetition_encode,
    traces,
)
from repro.workloads.mimo import make_frame, flops_to_ns


def make_heap(env):
    cluster = build_cluster(env, ClusterSpec(hosts=1))
    host = cluster.host(0)
    engine = MovementOrchestrator(env).attach_host(host)
    heap = UnifiedHeap(env, host, engine)
    heap.add_bin("local", start=1 << 20, size=4 << 20, tier="local",
                 is_remote=False)
    heap.add_bin("fam0", start=host.remote_base("fam0"), size=16 << 20,
                 tier="cpuless-numa", is_remote=True)
    return cluster, host, heap


def run(env, gen, horizon=2_000_000_000):
    proc = env.process(gen)
    env.run(until=env.now + horizon)
    assert proc.triggered
    if not proc.ok:
        raise proc.value
    return proc.value


class TestTraces:
    def test_sequential_stride(self):
        out = list(traces.sequential(0, 4, stride=128))
        assert out == [(0, False), (128, False), (256, False), (384, False)]

    def test_sequential_zero_stride_rejected(self):
        with pytest.raises(ValueError):
            list(traces.sequential(0, 4, stride=0))

    def test_uniform_within_span_and_aligned(self):
        rng = SimRng(1)
        out = list(traces.uniform(0x1000, 64 * 128, 200, rng,
                                  write_fraction=0.3))
        assert len(out) == 200
        for addr, _ in out:
            assert 0x1000 <= addr < 0x1000 + 64 * 128
            assert addr % 64 == 0
        writes = sum(1 for _, w in out if w)
        assert 20 < writes < 100

    def test_zipfian_skews_to_few_lines(self):
        rng = SimRng(2)
        out = list(traces.zipfian(0, 64 * 1024, 2000, rng, alpha=0.9))
        from collections import Counter
        counts = Counter(addr for addr, _ in out)
        top = counts.most_common(10)
        assert sum(c for _, c in top) > 0.5 * len(out)

    def test_pointer_chase_covers_lines(self):
        rng = SimRng(3)
        out = list(traces.pointer_chase(0, 64 * 8, 8, rng))
        assert sorted(addr for addr, _ in out) == [i * 64 for i in range(8)]

    def test_phased_working_sets_moves_between_phases(self):
        rng = SimRng(4)
        out = list(traces.phased_working_sets(0, 64 * 16, 3, 50, rng))
        assert len(out) == 150
        first = {addr for addr, _ in out[:50]}
        last = {addr for addr, _ in out[100:]}
        assert not (first & last)  # disjoint phase ranges


class TestKvStore:
    def test_put_get_roundtrip(self):
        env = Environment()
        _, _, heap = make_heap(env)
        store = KvStore(env, heap, value_bytes=1024)

        def go():
            yield from store.put("alpha")
            found = yield from store.get("alpha")
            missing = yield from store.get("beta")
            return found, missing

        found, missing = run(env, go())
        assert found is True and missing is False
        assert store.stats.hit_rate == 0.5
        assert len(store) == 1

    def test_overwrite_reuses_object(self):
        env = Environment()
        _, _, heap = make_heap(env)
        store = KvStore(env, heap)

        def go():
            first = yield from store.put("k")
            second = yield from store.put("k")
            return first.oid, second.oid

        oid1, oid2 = run(env, go())
        assert oid1 == oid2
        assert heap.allocations == 1

    def test_delete_frees_object(self):
        env = Environment()
        _, _, heap = make_heap(env)
        store = KvStore(env, heap)

        def go():
            yield from store.put("k")

        run(env, go())
        pointer = store.pointer_of("k")
        assert store.delete("k") is True
        assert not pointer.valid
        assert store.delete("k") is False


class TestGraph:
    def test_random_graph_shape(self):
        adjacency = random_graph(50, 4.0, SimRng(5))
        assert len(adjacency) == 50
        for vertex, neighbors in enumerate(adjacency):
            assert all(0 <= n < 50 and n != vertex for n in neighbors)

    def test_bfs_depths_match_networkx_free_reference(self):
        env = Environment()
        _, _, heap = make_heap(env)
        adjacency = [[1, 2], [3], [3], [], [0]]  # vertex 4 unreachable
        graph = CsrGraph(env, heap, adjacency)

        def go():
            return (yield from graph.bfs(0))

        depth = run(env, go())
        assert depth == {0: 0, 1: 1, 2: 1, 3: 2}

    def test_bfs_charges_time(self):
        env = Environment()
        _, _, heap = make_heap(env)
        adjacency = random_graph(64, 3.0, SimRng(6))
        graph = CsrGraph(env, heap, adjacency,
                         prefer_tier="cpuless-numa")

        def go():
            start = env.now
            yield from graph.bfs(0)
            return env.now - start

        elapsed = run(env, go())
        assert elapsed > 1000  # plenty of remote traffic

    def test_degree_sum(self):
        env = Environment()
        _, _, heap = make_heap(env)
        adjacency = [[1], [0, 2], [1]]
        graph = CsrGraph(env, heap, adjacency)

        def go():
            return (yield from graph.degree_sum())

        assert run(env, go()) == 4

    def test_free_releases_objects(self):
        env = Environment()
        _, _, heap = make_heap(env)
        graph = CsrGraph(env, heap, [[1], [0]])
        live_before = len(heap.live_objects())
        graph.free()
        assert len(heap.live_objects()) == live_before - 3


class TestQpsk:
    def test_modulate_demodulate_roundtrip(self):
        rng = np.random.default_rng(1)   # fcc: allow[seeded-rng]
        bits = rng.integers(0, 2, size=256).astype(np.int8)
        assert np.array_equal(qpsk_demodulate(qpsk_modulate(bits)), bits)

    def test_unit_power(self):
        bits = np.array([0, 0, 0, 1, 1, 0, 1, 1], dtype=np.int8)
        symbols = qpsk_modulate(bits)
        assert np.allclose(np.abs(symbols), 1.0)

    def test_odd_bits_rejected(self):
        with pytest.raises(ValueError):
            qpsk_modulate(np.array([1], dtype=np.int8))


class TestRepetitionCode:
    def test_roundtrip(self):
        bits = np.array([1, 0, 1, 1, 0], dtype=np.int8)
        assert np.array_equal(
            repetition_decode(repetition_encode(bits)), bits)

    def test_corrects_single_flip_per_codeword(self):
        bits = np.array([1, 0], dtype=np.int8)
        coded = repetition_encode(bits)
        coded[0] ^= 1   # flip one vote of the first bit
        assert np.array_equal(repetition_decode(coded), bits)

    def test_bad_length_rejected(self):
        with pytest.raises(ValueError):
            repetition_decode(np.array([1, 0], dtype=np.int8), rate=3)


class TestMimoPipeline:
    def test_uplink_recovers_bits_at_high_snr(self):
        config = MimoConfig(snr_db=30.0)
        channel = MimoChannel(config)
        pipeline = UplinkPipeline(config)
        rng = np.random.default_rng(0)   # fcc: allow[seeded-rng]
        payload = rng.integers(
            0, 2, size=config.bits_per_frame // 3).astype(np.int8)
        frame = make_frame(config, channel, payload, pipeline.pilot)
        decoded, flops = pipeline.process(frame)
        assert np.array_equal(decoded[:payload.size], payload)
        assert set(flops) == {"fft", "channel_estimate", "equalize",
                              "demodulate", "decode"}
        assert all(f > 0 for f in flops.values())

    def test_low_snr_has_errors_but_code_helps(self):
        config = MimoConfig(snr_db=-3.0, seed=3)
        channel = MimoChannel(config)
        pipeline = UplinkPipeline(config)
        rng = np.random.default_rng(0)   # fcc: allow[seeded-rng]
        payload = rng.integers(
            0, 2, size=config.bits_per_frame // 3).astype(np.int8)
        frame = make_frame(config, channel, payload, pipeline.pilot)
        decoded, _ = pipeline.process(frame)
        ber = np.mean(decoded[:payload.size] != payload)
        assert 0.0 < ber < 0.5

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MimoConfig(antennas=2, users=4)
        with pytest.raises(ValueError):
            MimoConfig(subcarriers=60)

    def test_flops_to_ns(self):
        assert flops_to_ns(8.0) == pytest.approx(1.0)
        assert flops_to_ns(8.0, speedup=2.0) == pytest.approx(0.5)

    def test_oversized_payload_rejected(self):
        config = MimoConfig()
        channel = MimoChannel(config)
        pipeline = UplinkPipeline(config)
        too_big = np.zeros(config.bits_per_frame, dtype=np.int8)
        with pytest.raises(ValueError):
            make_frame(config, channel, too_big, pipeline.pilot)
