"""Tests for the task IR, idempotence analysis, and recovery runtime."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    FailureInjector,
    IdempotentTask,
    Op,
    OpKind,
    Task,
    TaskRuntime,
    find_regions,
    is_idempotent,
)
from repro.infra import ClusterSpec, FaaSpec, build_cluster
from repro.sim import Environment, SimRng


def run(env, gen, horizon=1_000_000_000):
    proc = env.process(gen)
    env.run(until=env.now + horizon)
    assert proc.triggered
    if not proc.ok:
        raise proc.value
    return proc.value


class TestTaskIr:
    def test_fluent_builder(self):
        task = (Task("t").read(0x100).compute(50).write(0x200)
                .call("fft", duration_ns=10))
        assert len(task) == 4
        assert [op.kind for op in task.ops] == [
            OpKind.READ, OpKind.COMPUTE, OpKind.WRITE, OpKind.CALL]

    def test_op_lines_span(self):
        op = Op(OpKind.READ, addr=0x20, nbytes=128)
        assert op.lines() == frozenset({0, 1, 2})

    def test_compute_has_no_lines(self):
        assert Op(OpKind.COMPUTE, duration_ns=5).lines() == frozenset()

    def test_op_validation(self):
        with pytest.raises(ValueError):
            Op(OpKind.READ, addr=0, nbytes=0)
        with pytest.raises(ValueError):
            Op(OpKind.COMPUTE, duration_ns=-1)
        with pytest.raises(ValueError):
            Op(OpKind.CALL)


class TestIdempotenceAnalysis:
    def test_read_then_write_elsewhere_is_idempotent(self):
        task = Task("t").read(0x000).write(0x1000)
        assert is_idempotent(task.ops)
        assert len(find_regions(task)) == 1

    def test_clobbering_own_input_is_not_idempotent(self):
        task = Task("t").read(0x100).write(0x100)
        assert not is_idempotent(task.ops)

    def test_clobber_cuts_region_before_write(self):
        task = Task("t").read(0x100).compute(10).write(0x100).read(0x200)
        regions = find_regions(task)
        assert len(regions) == 2
        assert regions[0].ops[-1].kind is OpKind.COMPUTE
        assert regions[1].ops[0].kind is OpKind.WRITE

    def test_write_then_read_then_write_same_line_is_idempotent(self):
        # The read observes the region's own output, not a live-in:
        # replay regenerates it, so no cut is needed.
        task = Task("t").write(0x100).read(0x100).write(0x100)
        assert is_idempotent(task.ops)
        assert len(find_regions(task)) == 1

    def test_partial_line_overlap_detected(self):
        task = Task("t").read(0x100, nbytes=128).write(0x140)
        assert not is_idempotent(task.ops)

    def test_regions_cover_all_ops_in_order(self):
        task = Task("t")
        for i in range(8):
            task.read(i * 64)
            task.write(i * 64)   # clobber every time
        regions = find_regions(task)
        flattened = [op for region in regions for op in region.ops]
        assert flattened == task.ops

    def test_idempotent_task_wrapper(self):
        # read0 | write0 read40 | write40 : each write clobbers a
        # live-in of its region, so the cut lands before both writes.
        task = Task("t").read(0x0).write(0x0).read(0x40).write(0x40)
        idem = IdempotentTask(task)
        assert idem.region_count == 3
        assert idem.max_replay_ops == 2
        assert "3 regions" in repr(idem)


# Property: every region the analysis produces is itself idempotent,
# and the cut preserves op order and count.
random_ops = st.lists(
    st.tuples(st.sampled_from([OpKind.READ, OpKind.WRITE, OpKind.COMPUTE]),
              st.integers(min_value=0, max_value=12)),
    max_size=80)


@settings(max_examples=200, deadline=None)
@given(random_ops)
def test_property_regions_are_idempotent(spec):
    task = Task("prop")
    for kind, line in spec:
        if kind is OpKind.COMPUTE:
            task.compute(1.0)
        elif kind is OpKind.READ:
            task.read(line * 64)
        else:
            task.write(line * 64)
    regions = find_regions(task)
    for region in regions:
        assert is_idempotent(region.ops)
    assert sum(len(r) for r in regions) == len(task.ops)


@settings(max_examples=100, deadline=None)
@given(random_ops)
def test_property_replay_is_safe(spec):
    """Replaying any region from its start gives the same final memory.

    Simulated over a value store: each write stamps (op position);
    replay of a region must leave memory exactly as a single execution.
    """
    task = Task("prop")
    for kind, line in spec:
        if kind is OpKind.COMPUTE:
            task.compute(1.0)
        elif kind is OpKind.READ:
            task.read(line * 64)
        else:
            task.write(line * 64)
    regions = find_regions(task)

    def execute(replay_each_region_twice):
        memory = {}
        for region in regions:
            rounds = 2 if replay_each_region_twice else 1
            for _ in range(rounds):
                for position, op in enumerate(region.ops):
                    if op.kind is OpKind.WRITE:
                        for line in op.lines():
                            memory[line] = (region.index, position)
        return memory

    assert execute(False) == execute(True)


class TestRuntimeRecovery:
    def _cluster(self):
        env = Environment()
        cluster = build_cluster(env, ClusterSpec(hosts=1))
        return env, cluster

    def make_task(self, base=0, regions=8, ops_per_region=6):
        task = Task("bench")
        for r in range(regions):
            line = base + r * 0x1000
            for i in range(ops_per_region - 1):
                task.read(line + i * 64)
            task.write(line)   # clobbers the first read: cuts here
        return task

    def test_no_failures_runs_clean(self):
        env, cluster = self._cluster()
        runtime = TaskRuntime(env, cluster.host(0))
        task = self.make_task()

        def go():
            return (yield from runtime.execute(task))

        result = run(env, go())
        assert result.failures == 0
        assert result.replayed_ops == 0
        assert result.useful_ops == len(task.ops)

    def test_failures_replay_only_region(self):
        env, cluster = self._cluster()
        injector = FailureInjector(rate=0.05, rng=SimRng(3))
        runtime = TaskRuntime(env, cluster.host(0), injector=injector)
        task = self.make_task(regions=16)
        idem = IdempotentTask(task)

        def go():
            return (yield from runtime.execute(idem))

        result = run(env, go())
        assert result.failures > 0
        assert result.useful_ops == len(task.ops)
        # One failure can waste at most one region's worth of ops.
        assert result.replayed_ops <= result.failures * idem.max_replay_ops

    def test_restart_wastes_more_than_idempotent(self):
        def waste(recovery):
            env, cluster = self._cluster()
            injector = FailureInjector(rate=0.02, rng=SimRng(11))
            runtime = TaskRuntime(env, cluster.host(0),
                                  injector=injector, recovery=recovery)
            task = self.make_task(regions=12)

            def go():
                return (yield from runtime.execute(task))

            return run(env, go())

        idem = waste("idempotent")
        restart = waste("restart")
        assert restart.replayed_ops > idem.replayed_ops

    def test_accelerator_call_op(self):
        env = Environment()
        cluster = build_cluster(env, ClusterSpec(
            hosts=1, faas=[FaaSpec(name="faa0")]))
        accel = next(iter(cluster.faa("faa0").accelerators.values()))
        accel.register("fft", lambda req: (200.0, "ok"))
        runtime = TaskRuntime(env, cluster.host(0),
                              faa_ids={"faa0": cluster.endpoint_id("faa0")})
        task = Task("t").call("fft", accelerator="faa0")

        def go():
            return (yield from runtime.execute(task))

        result = run(env, go())
        assert result.useful_ops == 1
        assert accel.invocations == 1

    def test_injector_validation(self):
        with pytest.raises(ValueError):
            FailureInjector(rate=1.0)

    def test_runtime_validation(self):
        env, cluster = self._cluster()
        with pytest.raises(ValueError):
            TaskRuntime(env, cluster.host(0), recovery="magic")
