"""Tests for the fabric central arbiter and its control lane (DP#4)."""

import pytest

from repro.core import ArbiterError, UniFabric
from repro.infra import ClusterSpec, build_cluster
from repro.pcie import CreditDomain, RampUpPolicy
from repro.sim import Environment


def make_unifabric(env, hosts=2):
    cluster = build_cluster(env, ClusterSpec(hosts=hosts,
                                             control_lane=True))
    return UniFabric(env, cluster, with_arbiter=True)


def run(env, gen, horizon=100_000_000):
    proc = env.process(gen)
    env.run(until=env.now + horizon)
    assert proc.triggered
    if not proc.ok:
        raise proc.value
    return proc.value


class TestControlProtocol:
    def test_query_reports_grants_and_budget(self):
        env = Environment()
        uni = make_unifabric(env)
        domain = CreditDomain(env, budget=64)
        domain.register("in0")
        uni.arbiter.manage("sw0:fam0", domain)
        client = uni.arbiter_client("host0")

        def go():
            return (yield from client.query("sw0:fam0"))

        meta = run(env, go())
        assert meta["budget"] == 64
        assert "in0" in meta["grants"]

    def test_reserve_takes_effect_immediately(self):
        env = Environment()
        uni = make_unifabric(env)
        domain = CreditDomain(env, budget=64)
        domain.register("in0")
        domain.register("in1")
        uni.arbiter.manage("sw0:fam0", domain)
        client = uni.arbiter_client("host0")

        def go():
            grant = yield from client.reserve("sw0:fam0", "in0", 40)
            return grant

        grant = run(env, go())
        assert grant["granted"] == 40
        assert grant["prio"] >= 1
        assert domain.granted("in0") == 40

    def test_reclaim_releases_reservation(self):
        env = Environment()
        uni = make_unifabric(env)
        domain = CreditDomain(env, budget=64)
        domain.register("in0")
        domain.register("in1")
        uni.arbiter.manage("sw0:fam0", domain)
        client = uni.arbiter_client("host0")

        def go():
            yield from client.reserve("sw0:fam0", "in0", 48)
            before = domain.granted("in0")
            yield from client.reclaim("sw0:fam0", "in0")
            return before, domain.granted("in0")

        before, after = run(env, go())
        assert before == 48
        assert after < before

    def test_overcommitted_reservation_rejected(self):
        env = Environment()
        uni = make_unifabric(env)
        domain = CreditDomain(env, budget=32)
        domain.register("in0")
        domain.register("in1")
        uni.arbiter.manage("sw0:fam0", domain)
        client = uni.arbiter_client("host0")

        def go():
            yield from client.reserve("sw0:fam0", "in0", 20)
            try:
                yield from client.reserve("sw0:fam0", "in1", 20)
            except ArbiterError as exc:
                return str(exc)
            return None

        error = run(env, go())
        assert error is not None and "budget" in error

    def test_unknown_op_reports_error(self):
        env = Environment()
        uni = make_unifabric(env)
        client = uni.arbiter_client("host0")

        def go():
            try:
                yield from client._call({"op": "explode"})
            except ArbiterError as exc:
                return str(exc)

        assert "unknown op" in run(env, go())

    def test_duplicate_manage_rejected(self):
        env = Environment()
        uni = make_unifabric(env)
        domain = CreditDomain(env, budget=8)
        uni.arbiter.manage("d", domain)
        with pytest.raises(ValueError):
            uni.arbiter.manage("d", CreditDomain(env, budget=8))

    def test_manage_replaces_policy(self):
        env = Environment()
        uni = make_unifabric(env)
        domain = CreditDomain(env, budget=8, policy=RampUpPolicy())
        uni.arbiter.manage("d", domain)
        from repro.pcie import ReservationPolicy
        assert isinstance(domain.policy, ReservationPolicy)


class TestUniFabricFacade:
    def test_heaps_and_engines_per_host(self):
        env = Environment()
        uni = make_unifabric(env, hosts=2)
        assert uni.heap("host0") is not uni.heap("host1")
        assert uni.engine("host0").host.name == "host0"
        assert "UniFabric" in uni.describe()

    def test_heap_bins_cover_local_and_fams(self):
        env = Environment()
        uni = make_unifabric(env)
        bins = uni.heap("host0").bins
        assert "host0.local" in bins
        assert "fam0" in bins
        assert bins["fam0"].is_remote

    def test_arbiter_requires_flag(self):
        env = Environment()
        cluster = build_cluster(env, ClusterSpec(hosts=1))
        uni = UniFabric(env, cluster)
        with pytest.raises(RuntimeError):
            uni.arbiter_client()

    def test_task_runtime_factory(self):
        env = Environment()
        uni = make_unifabric(env)
        runtime = uni.task_runtime("host0", recovery="restart")
        assert runtime.recovery == "restart"

    def test_end_to_end_smart_pointer_via_facade(self):
        env = Environment()
        uni = make_unifabric(env)
        heap = uni.heap("host0")
        pointer = heap.allocate(4096)

        def go():
            yield from pointer.write(0)
            yield from pointer.read(64)
            return heap.profiler.temperature(pointer.oid)

        assert run(env, go()) > 0
