"""Tests for the whole-program analysis engine (repro.analysis.program).

Fixture projects live under ``tests/fixtures/program/`` — one *bad*
and one *clean* mini-package per rule, exercised through the same
:func:`run_program` entry point the CLI uses.
"""

import json
import time
from pathlib import Path

import pytest

from repro.analysis.program import (
    Baseline,
    build_index,
    load_baseline,
    run_program,
    split_by_baseline,
    violations_to_sarif,
)
from repro.analysis.program.baseline import BaselineError, baseline_payload
from repro.analysis.program.callgraph import build_callgraph
from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures" / "program"
REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE = REPO_ROOT / "fcc-baseline.json"


def codes(violations):
    return sorted({v.code for v in violations})


class TestProjectIndex:
    def test_indexes_fixture_package(self):
        index = build_index(FIXTURES / "taint_bad")
        assert set(index.modules) == {
            "taint_bad", "taint_bad.clockutil", "taint_bad.driver"}
        assert "taint_bad.driver.worker" in index.functions
        assert index.functions["taint_bad.driver.worker"].is_generator

    def test_relative_import_resolution(self):
        index = build_index(FIXTURES / "taint_bad")
        resolved = index.resolve("taint_bad.driver", "jitter")
        assert resolved == "taint_bad.clockutil.jitter"

    def test_function_at_maps_lines_to_methods(self):
        index = build_index(FIXTURES / "race_bad")
        func = index.functions["race_bad.tally.Tally.bump"]
        probe = index.function_at("race_bad.tally", func.lineno + 1)
        assert probe is not None
        assert probe.qualname == "race_bad.tally.Tally.bump"


class TestCallGraph:
    def test_spawn_sites_found(self):
        index = build_index(FIXTURES / "race_bad")
        graph = build_callgraph(index)
        roots = sorted(s.root for s in graph.spawns)
        assert roots == ["race_bad.tally.Tally.bump"] * 2

    def test_cross_module_edge(self):
        index = build_index(FIXTURES / "taint_bad")
        graph = build_callgraph(index)
        reach = graph.reachable_from(iter(["taint_bad.driver.worker"]))
        assert "taint_bad.clockutil.jitter" in reach


class TestDeterminismTaint:
    def test_bad_fixture_trips_fcc101(self):
        violations = run_program(FIXTURES / "taint_bad")
        assert codes(violations) == ["FCC101"]
        message = violations[0].message
        assert "taint_bad.driver.worker" in message
        assert "wall-clock" in message
        assert "->" in message   # the call chain is spelled out

    def test_reported_at_spawn_site(self):
        violations = run_program(FIXTURES / "taint_bad")
        assert violations[0].path.endswith("driver.py")

    def test_clean_fixture_is_clean(self):
        assert run_program(FIXTURES / "taint_clean") == []


class TestStaticWriteRace:
    def test_bad_fixture_trips_fcc102(self):
        violations = run_program(FIXTURES / "race_bad")
        assert codes(violations) == ["FCC102"]
        message = violations[0].message
        assert "`self.depth`" in message
        assert "2 spawn site(s)" in message

    def test_clean_fixture_is_clean(self):
        # commutative += and a yield-straddled read/store pair
        assert run_program(FIXTURES / "race_clean") == []


class TestBatchProtocol:
    def test_bad_fixture_trips_fcc103(self):
        violations = run_program(FIXTURES / "batch_bad")
        assert codes(violations) == ["FCC103"]
        messages = " | ".join(v.message for v in violations)
        assert ".pop(...)" in messages          # dequeue while planning
        assert "stores to scheduler state" in messages
        assert ".timeout(...)" in messages      # kernel event in plan
        assert "pops the *tail*" in messages    # commit/peek mismatch

    def test_impure_plan_specifically_flagged(self):
        violations = run_program(FIXTURES / "batch_bad")
        plan_hits = [v for v in violations
                     if "plan_ready_run" in v.message]
        assert len(plan_hits) >= 2

    def test_clean_fixture_is_clean(self):
        assert run_program(FIXTURES / "batch_clean") == []


class TestBaseline:
    def test_split_known_vs_new(self):
        violations = run_program(FIXTURES / "race_bad")
        payload = baseline_payload(violations)
        baseline = Baseline(payload["baseline"])
        new, known = split_by_baseline(violations, baseline)
        assert new == []
        assert known == violations

    def test_new_findings_not_covered(self):
        violations = run_program(FIXTURES / "race_bad")
        baseline = Baseline([])
        new, known = split_by_baseline(violations, baseline)
        assert known == []
        assert new == violations

    def test_matching_ignores_line_numbers(self):
        violations = run_program(FIXTURES / "race_bad")
        payload = baseline_payload(violations)
        # the entry carries no line number at all
        assert all("line" not in entry
                   for entry in payload["baseline"])

    def test_stale_entries_surfaced(self):
        stale = {"code": "FCC102", "path": "gone.py", "message": "x"}
        baseline = Baseline([stale])
        assert baseline.stale_entries([]) == [stale]

    def test_load_rejects_bad_files(self, tmp_path):
        missing = tmp_path / "nope.json"
        with pytest.raises(BaselineError):
            load_baseline(missing)
        bad = tmp_path / "bad.json"
        bad.write_text("[]")
        with pytest.raises(BaselineError):
            load_baseline(bad)

    def test_committed_baseline_loads(self):
        baseline = load_baseline(BASELINE)
        assert len(baseline) >= 0   # parses and validates


class TestSarif:
    def test_sarif_structure(self):
        violations = run_program(FIXTURES / "batch_bad")
        doc = violations_to_sarif(violations)
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"FCC101", "FCC102", "FCC103"} <= rule_ids
        assert len(run["results"]) == len(violations)
        for result in run["results"]:
            assert result["level"] == "error"
            region = result["locations"][0]["physicalLocation"]["region"]
            assert region["startLine"] >= 1
            assert region["endLine"] >= region["startLine"]
        json.dumps(doc)   # round-trippable

    def test_baselined_results_are_notes(self):
        violations = run_program(FIXTURES / "race_bad")
        doc = violations_to_sarif([], violations)
        levels = {r["level"] for r in doc["runs"][0]["results"]}
        assert levels == {"note"}
        states = {r["baselineState"] for r in doc["runs"][0]["results"]}
        assert states == {"unchanged"}


class TestRepoGate:
    def test_repo_clean_under_committed_baseline(self):
        violations = run_program()
        baseline = load_baseline(BASELINE)
        new, _ = split_by_baseline(violations, baseline)
        assert new == [], "\n".join(v.format() for v in new)
        assert baseline.stale_entries(violations) == []

    def test_whole_program_pass_under_five_seconds(self):
        # timing the analyzer itself, not simulated behavior
        start = time.monotonic()   # fcc: allow[wall-clock]
        run_program()
        elapsed = time.monotonic() - start   # fcc: allow[wall-clock]
        assert elapsed < 5.0


class TestProgramCli:
    def test_program_with_baseline_exits_zero(self, capsys):
        status = main(["check", "--program",
                       "--baseline", str(BASELINE)])
        assert status == 0
        assert "program: clean" in capsys.readouterr().out

    def test_program_new_finding_fails(self, capsys):
        status = main(["check", "--program",
                       str(FIXTURES / "race_bad")])
        assert status == 1
        assert "FCC102" in capsys.readouterr().out

    def test_program_json_schema(self, capsys):
        main(["check", "--program", "--json",
              str(FIXTURES / "batch_bad")])
        payload = json.loads(capsys.readouterr().out)
        assert payload["tool"] == "fcc-check-program"
        assert payload["count"] == len(payload["violations"]) > 0

    def test_program_sarif_parses(self, capsys):
        main(["check", "--program", "--sarif",
              str(FIXTURES / "taint_bad")])
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"

    def test_sarif_without_program_rejected(self, capsys):
        assert main(["check", "--sarif"]) == 2

    def test_explain_known_code(self, capsys):
        assert main(["check", "--explain", "FCC103"]) == 0
        out = capsys.readouterr().out
        assert "batch-protocol" in out
        assert "example fix:" in out

    def test_explain_every_registered_code(self, capsys):
        from repro.analysis.lint import all_checks
        from repro.analysis.program.checks import all_program_checks
        for check in list(all_checks()) + all_program_checks():
            assert main(["check", "--explain", check.code]) == 0, \
                check.code
            out = capsys.readouterr().out
            assert check.slug in out

    def test_explain_unknown_code_exits_two(self, capsys):
        assert main(["check", "--explain", "FCC999"]) == 2
