"""Final coverage sweep: small behaviours not pinned elsewhere."""

import pytest

from repro import params
from repro.core import (
    ETrans,
    MovementOrchestrator,
    UniFabric,
    UnifiedHeap,
)
from repro.infra import ClusterSpec, build_cluster
from repro.mem import DramDevice
from repro.sim import Environment, SimRng
from repro.workloads import traces


def run(env, gen, horizon=100_000_000_000):
    proc = env.process(gen)
    env.run(until=env.now + horizon, until_event=proc)
    assert proc.triggered
    if not proc.ok:
        raise proc.value
    return proc.value


class TestMovementDetails:
    def test_agent_backlog_visible(self):
        env = Environment()
        cluster = build_cluster(env, ClusterSpec(hosts=1))
        orch = MovementOrchestrator(env)
        engine = orch.attach_host(cluster.host(0))
        for _ in range(3):
            engine.submit(ETrans(src_list=[(0, 64 * 1024)],
                                 dst_list=[(1 << 20, 64 * 1024)],
                                 ownership="silent"))
        # Before the agent runs, the queue holds the delegated work.
        assert orch.agent("host0").backlog() >= 2
        env.run(until=100_000_000)
        assert orch.agent("host0").executed == 3
        assert orch.agent("host0").backlog() == 0

    def test_engine_chunk_validation(self):
        env = Environment()
        cluster = build_cluster(env, ClusterSpec(hosts=1))
        orch = MovementOrchestrator(env)
        with pytest.raises(ValueError):
            orch.attach_host(cluster.host(0), chunk_bytes=32)

    def test_unmapped_address_counts_as_unmapped_region(self):
        env = Environment()
        cluster = build_cluster(env, ClusterSpec(hosts=1))
        orch = MovementOrchestrator(env)
        orch.account(cluster.host(0), 1 << 60, 0, 64)
        assert ("unmapped", "host0.dram") in orch.traffic_matrix


class TestUniFabricDetails:
    def test_describe_mentions_bins_and_arbiter_state(self):
        env = Environment()
        cluster = build_cluster(env, ClusterSpec(hosts=1))
        uni = UniFabric(env, cluster)
        text = uni.describe()
        assert "arbiter: no" in text
        assert "host0.local" in text

    def test_start_heap_runtimes_idempotent(self):
        env = Environment()
        cluster = build_cluster(env, ClusterSpec(hosts=2))
        uni = UniFabric(env, cluster)
        uni.start_heap_runtimes()
        uni.start_heap_runtimes()   # second call must be harmless
        env.run(until=100_000)


class TestDramDetails:
    def test_same_bank_different_row_conflicts(self):
        env = Environment()
        dram = DramDevice(env, banks=2, row_bytes=4096)

        def go():
            # bank 0 row 0, then bank 0 row 1: a row conflict.
            yield from dram.access(0)
            yield from dram.access(2 * 4096)
            return dram.row_misses

        assert run(env, go()) == 2

    def test_row_hit_rate_empty(self):
        env = Environment()
        assert DramDevice(env).row_hit_rate == 0.0


class TestTraceHelpers:
    def test_read_write_mix_alignment_and_fraction(self):
        rng = SimRng(5)
        addrs = [100, 200, 300, 400] * 25
        out = list(traces.read_write_mix(addrs, rng, write_fraction=1.0))
        assert all(is_write for _, is_write in out)
        assert all(addr % 64 == 0 for addr, _ in out)

    def test_zipfian_span_validation(self):
        with pytest.raises(ValueError):
            list(traces.zipfian(0, 32, 1, SimRng(0)))

    def test_pointer_chase_span_validation(self):
        with pytest.raises(ValueError):
            list(traces.pointer_chase(0, 64, 1, SimRng(0)))


class TestHeapDetails:
    def test_bins_by_preference_orders_local_first(self):
        env = Environment()
        cluster = build_cluster(env, ClusterSpec(hosts=1))
        orch = MovementOrchestrator(env)
        engine = orch.attach_host(cluster.host(0))
        heap = UnifiedHeap(env, cluster.host(0), engine)
        heap.add_bin("remote1", start=1 << 31, size=4096,
                     tier="cpuless-numa", is_remote=True)
        heap.add_bin("local1", start=1 << 20, size=4096, tier="local",
                     is_remote=False)
        ordered = heap.bins_by_preference(None)
        assert ordered[0].name == "local1"
        preferred = heap.bins_by_preference("cpuless-numa")
        assert preferred[0].name == "remote1"

    def test_duplicate_bin_rejected(self):
        env = Environment()
        cluster = build_cluster(env, ClusterSpec(hosts=1))
        orch = MovementOrchestrator(env)
        engine = orch.attach_host(cluster.host(0))
        heap = UnifiedHeap(env, cluster.host(0), engine)
        heap.add_bin("b", start=0, size=4096, tier="local",
                     is_remote=False)
        from repro.core import HeapError
        with pytest.raises(HeapError):
            heap.add_bin("b", start=1 << 20, size=4096, tier="local",
                         is_remote=False)


class TestLinkParamsMath:
    def test_x16_64gt_bandwidth(self):
        lp = params.LinkParams(lanes=16, gt_per_s=64.0)
        assert lp.bytes_per_ns == pytest.approx(128.0)
        assert lp.serialization_ns(128) == pytest.approx(1.0)

    def test_flit_count_never_zero(self):
        assert params.flit_count(0) == 1
        assert params.flit_count(-5) == 1
