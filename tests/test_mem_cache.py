"""Tests for the set-associative cache and victim buffer."""

import pytest

from repro.mem import CacheConfig, SetAssociativeCache, VictimBuffer


def small_cache(assoc=2, sets=4, line=64):
    return SetAssociativeCache(CacheConfig(
        name="test", size_bytes=assoc * sets * line, assoc=assoc,
        line_bytes=line))


class TestConfig:
    def test_num_sets(self):
        config = CacheConfig(name="c", size_bytes=32 * 1024, assoc=8)
        assert config.num_sets == 64

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            CacheConfig(name="c", size_bytes=100, assoc=3)
        with pytest.raises(ValueError):
            CacheConfig(name="c", size_bytes=0, assoc=1)
        with pytest.raises(ValueError):
            CacheConfig(name="c", size_bytes=3 * 64 * 3, assoc=3)


class TestLookup:
    def test_miss_then_hit(self):
        cache = small_cache()
        assert not cache.access(0x1000, False).hit
        assert cache.access(0x1000, False).hit
        assert cache.hits == 1 and cache.misses == 1

    def test_same_line_different_offset_hits(self):
        cache = small_cache()
        cache.access(0x1000, False)
        assert cache.access(0x1020, False).hit  # same 64B line

    def test_lru_eviction_order(self):
        cache = small_cache(assoc=2, sets=1)
        a, b, c = 0x000, 0x040, 0x080
        cache.access(a, False)
        cache.access(b, False)
        cache.access(a, False)      # a becomes MRU
        cache.access(c, False)      # evicts b (LRU)
        assert cache.probe(a)
        assert not cache.probe(b)
        assert cache.probe(c)

    def test_clean_eviction_reports_nothing(self):
        cache = small_cache(assoc=1, sets=1)
        cache.access(0x000, False)
        result = cache.access(0x040, False)
        assert result.evicted_dirty_line is None

    def test_dirty_eviction_reports_line_address(self):
        cache = small_cache(assoc=1, sets=1)
        cache.access(0x000, True)
        result = cache.access(0x040, False)
        assert result.evicted_dirty_line == 0x000
        assert cache.writebacks == 1

    def test_eviction_address_reconstruction_multi_set(self):
        cache = small_cache(assoc=1, sets=4)
        addr = 0x040 * 7  # set 3, tag 1
        cache.access(addr, True)
        conflicting = addr + 4 * 0x040 * 4
        result = cache.access(conflicting, False)
        assert result.evicted_dirty_line == (addr // 64) * 64

    def test_write_marks_dirty_on_hit(self):
        cache = small_cache(assoc=1, sets=1)
        cache.access(0x000, False)   # clean fill
        cache.access(0x000, True)    # dirty via hit
        result = cache.access(0x040, False)
        assert result.evicted_dirty_line == 0x000


class TestInvalidate:
    def test_invalidate_removes_line(self):
        cache = small_cache()
        cache.access(0x1000, False)
        assert cache.invalidate(0x1000) is False  # was clean
        assert not cache.probe(0x1000)

    def test_invalidate_dirty_returns_true(self):
        cache = small_cache()
        cache.access(0x1000, True)
        assert cache.invalidate(0x1000) is True

    def test_invalidate_absent_is_noop(self):
        cache = small_cache()
        assert cache.invalidate(0x9999) is False

    def test_flush_all_returns_dirty_lines(self):
        cache = small_cache(assoc=2, sets=2)
        cache.access(0x000, True)
        cache.access(0x040, False)
        cache.access(0x080, True)
        dirty = cache.flush_all()
        assert sorted(dirty) == [0x000, 0x080]
        assert cache.occupancy() == 0


class TestStats:
    def test_hit_rate(self):
        cache = small_cache()
        cache.access(0, False)
        cache.access(0, False)
        cache.access(0, False)
        assert cache.hit_rate == pytest.approx(2 / 3)

    def test_empty_hit_rate_zero(self):
        assert small_cache().hit_rate == 0.0


class TestVictimBuffer:
    def test_push_within_capacity(self):
        vb = VictimBuffer(entries=2)
        assert vb.push(0x40) is None
        assert vb.push(0x80) is None
        assert len(vb) == 2

    def test_overflow_returns_oldest(self):
        vb = VictimBuffer(entries=2)
        vb.push(0x40)
        vb.push(0x80)
        assert vb.push(0xC0) == 0x40
        assert vb.overflows == 1

    def test_drain_fifo(self):
        vb = VictimBuffer(entries=4)
        vb.push(1)
        vb.push(2)
        assert vb.drain_one() == 1
        assert vb.drain_one() == 2
        assert vb.drain_one() is None

    def test_invalid_entries(self):
        with pytest.raises(ValueError):
            VictimBuffer(entries=0)


class TestWayPartitioning:
    def test_partitioned_class_cannot_thrash_others(self):
        cache = small_cache(assoc=4, sets=1)
        cache.set_partition("stream", 1)
        # Resident working set: 3 lines of the unconstrained class.
        for addr in (0x000, 0x040, 0x080):
            cache.access(addr, False)
        # A long stream through the partitioned class...
        for i in range(20):
            cache.access(0x1000 + i * 64, False, way_class="stream")
        # ...must leave the resident lines untouched.
        assert cache.probe(0x000)
        assert cache.probe(0x040)
        assert cache.probe(0x080)

    def test_partition_evicts_own_class_lru(self):
        cache = small_cache(assoc=4, sets=1)
        cache.set_partition("s", 2)
        cache.access(0x000, False, way_class="s")
        cache.access(0x040, False, way_class="s")
        cache.access(0x080, False, way_class="s")   # evicts 0x000
        assert not cache.probe(0x000)
        assert cache.probe(0x040) and cache.probe(0x080)

    def test_unpartitioned_class_uses_global_lru(self):
        cache = small_cache(assoc=2, sets=1)
        cache.set_partition("s", 1)
        cache.access(0x000, False)                   # unconstrained
        cache.access(0x040, False)                   # unconstrained
        cache.access(0x080, False)                   # evicts 0x000
        assert not cache.probe(0x000)

    def test_partition_validation(self):
        cache = small_cache(assoc=2, sets=1)
        with pytest.raises(ValueError):
            cache.set_partition("s", 0)
        with pytest.raises(ValueError):
            cache.set_partition("s", 3)

    def test_dirty_partition_victim_reports_writeback(self):
        cache = small_cache(assoc=4, sets=1)
        cache.set_partition("s", 1)
        cache.access(0x000, True, way_class="s")
        result = cache.access(0x040, False, way_class="s")
        assert result.evicted_dirty_line == 0x000
