"""Tests for hardware cooperative scalable functions (DP#3)."""

import pytest

from repro import params
from repro.core import FunctionChassis, HandlerResult, Message, ScalableFunction
from repro.fabric import Channel, Packet, PacketKind
from repro.pcie import FabricManager, PortRole, Topology
from repro.sim import Environment


def make_fabric(env, functions, coordination_ns=15.0):
    topo = Topology(env)
    topo.add_switch("sw0")
    topo.add_endpoint("host0")
    host_port = topo.connect_endpoint("sw0", "host0", role=PortRole.UPSTREAM)
    topo.add_endpoint("faa0")
    faa_port = topo.connect_endpoint("sw0", "faa0")
    FabricManager(topo).configure()
    chassis = FunctionChassis(env, faa_port, functions,
                              coordination_ns=coordination_ns)
    return topo, host_port, chassis


def call_packet(host_port, topo, function, payload=None, msg_type="call",
                await_result=True):
    return Packet(kind=PacketKind.IO_WR, channel=Channel.CXL_IO,
                  src=host_port.port_id,
                  dst=topo.endpoints["faa0"].global_id,
                  nbytes=64,
                  meta={"function": function, "msg_type": msg_type,
                        "payload": payload, "await": await_result})


def run(env, gen, horizon=10_000_000):
    proc = env.process(gen)
    env.run(until=env.now + horizon)
    assert proc.triggered
    if not proc.ok:
        raise proc.value
    return proc.value


class TestHandlers:
    def test_call_roundtrip_with_result(self):
        env = Environment()
        doubler = ScalableFunction("doubler").on(
            "call", lambda state, msg: HandlerResult(
                compute_ns=100.0, value=msg.payload * 2))
        topo, host_port, chassis = make_fabric(env, [doubler])

        def go():
            response = yield from host_port.request(
                call_packet(host_port, topo, "doubler", payload=21))
            return response.meta["result"]

        assert run(env, go()) == 42
        assert doubler.messages_handled == 1
        assert doubler.busy_ns == 100.0

    def test_stateful_handler_accumulates(self):
        env = Environment()

        def add(state, msg):
            state["sum"] = state.get("sum", 0) + msg.payload
            return HandlerResult(compute_ns=10.0, value=state["sum"])

        counter = ScalableFunction("counter").on("add", add)
        topo, host_port, chassis = make_fabric(env, [counter])

        def go():
            results = []
            for value in (1, 2, 3):
                response = yield from host_port.request(
                    call_packet(host_port, topo, "counter",
                                payload=value, msg_type="add"))
                results.append(response.meta["result"])
            return results

        assert run(env, go()) == [1, 3, 6]

    def test_fire_and_forget_accepted_immediately(self):
        env = Environment()
        slow = ScalableFunction("slow").on(
            "call", lambda state, msg: HandlerResult(compute_ns=100_000.0))
        topo, host_port, chassis = make_fabric(env, [slow])

        def go():
            start = env.now
            response = yield from host_port.request(
                call_packet(host_port, topo, "slow", await_result=False))
            return env.now - start, response.meta

        latency, meta = run(env, go())
        assert meta.get("accepted") is True
        assert latency < 1_000  # did not wait for the 100us handler

    def test_unknown_function_faults(self):
        env = Environment()
        function = ScalableFunction("f").on(
            "call", lambda s, m: HandlerResult())
        topo, host_port, chassis = make_fabric(env, [function])

        def go():
            response = yield from host_port.request(
                call_packet(host_port, topo, "ghost"))
            return response.meta

        meta = run(env, go())
        assert meta.get("fault") is True

    def test_unknown_msg_type_faults(self):
        env = Environment()
        function = ScalableFunction("f").on(
            "call", lambda s, m: HandlerResult())
        topo, host_port, chassis = make_fabric(env, [function])

        def go():
            response = yield from host_port.request(
                call_packet(host_port, topo, "f", msg_type="nope"))
            return response.meta

        meta = run(env, go())
        assert meta.get("fault") is True
        assert "no handler" in meta["error"]

    def test_duplicate_handler_rejected(self):
        function = ScalableFunction("f").on(
            "call", lambda s, m: HandlerResult())
        with pytest.raises(ValueError):
            function.on("call", lambda s, m: HandlerResult())


class TestCoordinationSublayer:
    def test_colocated_pipeline_via_local_messages(self):
        """stage1 -> stage2 co-located: coordination, not fabric."""
        env = Environment()
        results = []

        def stage1(state, msg):
            out = Message(msg_type="finish", payload=msg.payload + 1,
                          src="stage1")
            return HandlerResult(compute_ns=50.0,
                                 outgoing=[("stage2", out)])

        def stage2(state, msg):
            results.append(msg.payload * 10)
            return HandlerResult(compute_ns=20.0)

        functions = [ScalableFunction("stage1").on("call", stage1),
                     ScalableFunction("stage2").on("finish", stage2)]
        topo, host_port, chassis = make_fabric(env, functions)

        def go():
            yield from host_port.request(
                call_packet(host_port, topo, "stage1", payload=4))
            yield env.timeout(1_000)

        run(env, go())
        assert results == [50]
        assert chassis.local_messages == 1
        assert chassis.fabric_messages == 1

    def test_local_message_cheaper_than_fabric_roundtrip(self):
        env = Environment()
        times = {}

        def ping(state, msg):
            times["sent_local"] = env.now
            out = Message(msg_type="pong", payload=None, src="ping")
            return HandlerResult(outgoing=[("pong", out)])

        def pong(state, msg):
            times["got_local"] = env.now
            return HandlerResult()

        functions = [ScalableFunction("ping").on("call", ping),
                     ScalableFunction("pong").on("pong", pong)]
        topo, host_port, chassis = make_fabric(env, functions,
                                               coordination_ns=15.0)

        def go():
            start = env.now
            yield from host_port.request(
                call_packet(host_port, topo, "ping"))
            times["fabric_rtt"] = env.now - start
            yield env.timeout(100)

        run(env, go())
        local_cost = times["got_local"] - times["sent_local"]
        assert local_cost < times["fabric_rtt"] / 5

    def test_send_local_to_unknown_function_raises(self):
        env = Environment()
        function = ScalableFunction("f").on(
            "call", lambda s, m: HandlerResult())
        topo, host_port, chassis = make_fabric(env, [function])

        def go():
            yield from chassis.send_local("ghost", Message(msg_type="x"))

        with pytest.raises(KeyError):
            run(env, go())


class TestValidation:
    def test_empty_function_list_rejected(self):
        env = Environment()
        topo = Topology(env)
        topo.add_switch("sw0")
        topo.add_endpoint("faa0")
        port = topo.connect_endpoint("sw0", "faa0")
        with pytest.raises(ValueError):
            FunctionChassis(env, port, [])

    def test_duplicate_function_names_rejected(self):
        env = Environment()
        topo = Topology(env)
        topo.add_switch("sw0")
        topo.add_endpoint("faa0")
        port = topo.connect_endpoint("sw0", "faa0")
        functions = [ScalableFunction("same"), ScalableFunction("same")]
        with pytest.raises(ValueError):
            FunctionChassis(env, port, functions)


class TestContextMigration:
    """Difference #4: checkpoint and ship execution contexts."""

    def _two_chassis(self, env):
        from repro.core import FunctionChassis
        topo = Topology(env)
        topo.add_switch("sw0")
        topo.add_endpoint("host0")
        host_port = topo.connect_endpoint("sw0", "host0",
                                          role=PortRole.UPSTREAM)
        ports = {}
        for name in ("faaA", "faaB"):
            topo.add_endpoint(name)
            ports[name] = topo.connect_endpoint("sw0", name)
        FabricManager(topo).configure()

        def counting(state, msg):
            state["count"] = state.get("count", 0) + 1
            return HandlerResult(compute_ns=10.0, value=state["count"])

        fn = ScalableFunction("counter").on("bump", counting)
        src = FunctionChassis(env, ports["faaA"], [fn], name="faaA")
        # Destination needs at least one resident function.
        sentinel = ScalableFunction("sentinel").on(
            "noop", lambda s, m: HandlerResult())
        dst = FunctionChassis(env, ports["faaB"], [sentinel],
                              name="faaB")
        return topo, host_port, src, dst

    def _bump(self, host_port, topo, faa_name):
        return Packet(kind=PacketKind.IO_WR, channel=Channel.CXL_IO,
                      src=host_port.port_id,
                      dst=topo.endpoints[faa_name].global_id,
                      nbytes=64,
                      meta={"function": "counter", "msg_type": "bump"})

    def test_state_survives_migration(self):
        from repro.core import migrate_function
        env = Environment()
        topo, host_port, src, dst = self._two_chassis(env)
        results = []

        def go():
            for _ in range(3):
                rsp = yield from host_port.request(
                    self._bump(host_port, topo, "faaA"))
                results.append(rsp.meta["result"])
            yield from migrate_function(
                env, host_port, src, dst,
                topo.endpoints["faaB"].global_id, "counter")
            for _ in range(2):
                rsp = yield from host_port.request(
                    self._bump(host_port, topo, "faaB"))
                results.append(rsp.meta["result"])

        proc = env.process(go())
        env.run(until=10_000_000, until_event=proc)
        assert proc.ok, proc.value
        assert results == [1, 2, 3, 4, 5]   # the count carried over

    def test_source_no_longer_serves_after_checkpoint(self):
        from repro.core import migrate_function
        env = Environment()
        topo, host_port, src, dst = self._two_chassis(env)

        def go():
            yield from migrate_function(
                env, host_port, src, dst,
                topo.endpoints["faaB"].global_id, "counter")
            rsp = yield from host_port.request(
                self._bump(host_port, topo, "faaA"))
            return rsp.meta

        proc = env.process(go())
        env.run(until=10_000_000, until_event=proc)
        assert proc.ok, proc.value
        assert proc.value.get("fault") is True

    def test_pending_messages_travel_with_the_context(self):
        env = Environment()
        topo, host_port, src, dst = self._two_chassis(env)
        # Stuff the mailbox directly, then checkpoint before the core
        # can drain it (no sim time has elapsed).
        counter = src.functions["counter"]
        from repro.core import Message as CoreMessage
        counter.mailbox.put(CoreMessage(msg_type="bump"))
        counter.mailbox.put(CoreMessage(msg_type="bump"))
        context = src.checkpoint("counter")
        assert len(context.pending) == 2
        restored = dst.restore(context)
        env.run(until=1_000)
        assert restored.state["count"] == 2

    def test_checkpoint_unknown_function_raises(self):
        env = Environment()
        topo, host_port, src, dst = self._two_chassis(env)
        with pytest.raises(KeyError):
            src.checkpoint("ghost")

    def test_restore_duplicate_rejected(self):
        env = Environment()
        topo, host_port, src, dst = self._two_chassis(env)
        context = src.checkpoint("counter")
        dst.restore(context)
        with pytest.raises(ValueError):
            dst.restore(context)
