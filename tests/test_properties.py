"""Hypothesis property tests across the stack.

Complements the per-module suites with randomized invariants:
scheduler conservation and ordering, cache bounds, tag-space safety,
routing reachability on random topologies, and scatter/gather extent
pairing.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.etrans import _paired_extents
from repro.fabric import Channel, Packet, PacketKind, TagAllocator
from repro.fabric.flit import Flit
from repro.mem import CacheConfig, SetAssociativeCache
from repro.pcie import FabricManager, FairVcScheduler, FifoScheduler, Topology
from repro.sim import Environment


def make_flit(vc=0, size=68, uid_salt=0):
    packet = Packet(kind=PacketKind.MEM_WR, channel=Channel.CXL_MEM,
                    src=0, dst=1, nbytes=64)
    return Flit(packet=packet, index=0, total=1, size_bytes=size, vc=vc)


# -- scheduler conservation & ordering --------------------------------------

scheduler_plans = st.lists(
    st.tuples(st.integers(min_value=0, max_value=3),      # vc
              st.sampled_from([68, 256])),                 # size
    min_size=1, max_size=60)


@settings(max_examples=100, deadline=None)
@given(scheduler_plans)
def test_property_fifo_scheduler_conserves_and_orders(plan):
    env = Environment()
    scheduler = FifoScheduler(env, capacity=1000)
    flits = [make_flit(vc=vc, size=size) for vc, size in plan]

    def feed():
        for flit in flits:
            yield scheduler.push(flit)

    env.process(feed())
    env.run(until=1)
    out = []

    def drain():
        for _ in range(len(flits)):
            out.append((yield from scheduler.pop()))

    env.process(drain())
    env.run(until=2)
    assert out == flits          # exact conservation, arrival order


@settings(max_examples=100, deadline=None)
@given(scheduler_plans)
def test_property_fair_scheduler_conserves_and_keeps_vc_order(plan):
    env = Environment()
    scheduler = FairVcScheduler(env, capacity=1000)
    flits = [make_flit(vc=vc, size=size) for vc, size in plan]

    def feed():
        for flit in flits:
            yield scheduler.push(flit)

    env.process(feed())
    env.run(until=1)
    out = []

    def drain():
        for _ in range(len(flits)):
            out.append((yield from scheduler.pop()))

    env.process(drain())
    env.run(until=2)
    # Conservation: same multiset (by identity).
    assert sorted(map(id, out)) == sorted(map(id, flits))
    # Per-VC FIFO: within one VC, arrival order is preserved.
    for vc in {f.vc for f in flits}:   # fcc: allow[unordered-iter]
        arrived = [f for f in flits if f.vc == vc]
        served = [f for f in out if f.vc == vc]
        assert arrived == served


# -- cache invariants -------------------------------------------------------

cache_traces = st.lists(
    st.tuples(st.integers(min_value=0, max_value=63),     # line index
              st.booleans()),                              # is_write
    max_size=150)


@settings(max_examples=100, deadline=None)
@given(cache_traces)
def test_property_cache_never_exceeds_capacity_and_probe_holds(trace):
    cache = SetAssociativeCache(CacheConfig(
        name="p", size_bytes=8 * 64, assoc=2))
    for line, is_write in trace:
        addr = line * 64
        cache.access(addr, is_write)
        assert cache.probe(addr)                    # just-accessed present
        assert cache.occupancy() <= 8               # capacity bound
    assert cache.hits + cache.misses == len(trace)


@settings(max_examples=100, deadline=None)
@given(cache_traces)
def test_property_flush_empties_and_reports_only_writes(trace):
    cache = SetAssociativeCache(CacheConfig(
        name="p", size_bytes=16 * 64, assoc=4))
    written = set()
    for line, is_write in trace:
        result = cache.access(line * 64, is_write)
        if is_write:
            written.add(line * 64)
        if result.evicted_dirty_line is not None:
            written.discard(result.evicted_dirty_line)
    dirty = set(cache.flush_all())
    assert dirty == written
    assert cache.occupancy() == 0


# -- tag space safety --------------------------------------------------------

tag_plans = st.lists(st.booleans(), max_size=100)  # True=alloc, False=free


@settings(max_examples=100, deadline=None)
@given(tag_plans)
def test_property_tag_allocator_unique_and_bounded(plan):
    tags = TagAllocator(capacity=8)
    live = []
    for do_alloc in plan:
        if do_alloc:
            if tags.available:
                tag = tags.allocate()
                assert tag not in live
                live.append(tag)
            else:
                with pytest.raises(RuntimeError):
                    tags.allocate()
        elif live:
            tags.free(live.pop(0))
        assert tags.in_use == len(live) <= 8


# -- routing reachability on random topologies --------------------------------

topology_specs = st.tuples(
    st.integers(min_value=1, max_value=4),    # switches (chained)
    st.lists(st.integers(min_value=0, max_value=3),
             min_size=2, max_size=6),         # endpoint -> switch index
)


@settings(max_examples=50, deadline=None)
@given(topology_specs)
def test_property_manager_routes_every_endpoint_everywhere(spec):
    switches, placements = spec
    env = Environment()
    topo = Topology(env)
    for s in range(switches):
        topo.add_switch(f"sw{s}")
    for a, b in zip(range(switches), range(1, switches)):
        topo.connect_switches(f"sw{a}", f"sw{b}")
    for index, home in enumerate(placements):
        name = f"ep{index}"
        topo.add_endpoint(name)
        topo.connect_endpoint(f"sw{home % switches}", name)
    FabricManager(topo).configure()
    for switch in topo.switches.values():
        for endpoint in topo.endpoints.values():
            # Every switch can forward toward every endpoint.
            assert endpoint.pbr in switch.table


# -- scatter/gather extent pairing ---------------------------------------------

extent_lists = st.lists(st.integers(min_value=1, max_value=512),
                        min_size=1, max_size=8)


@settings(max_examples=150, deadline=None)
@given(extent_lists, extent_lists)
def test_property_paired_extents_cover_exactly(src_sizes, dst_sizes):
    total = min(sum(src_sizes), sum(dst_sizes))
    # Trim so the two sides carry equal bytes (ETrans validates this).
    src = [(i * 0x10000, n) for i, n in enumerate(src_sizes)]
    dst = [(0x900000 + i * 0x10000, n) for i, n in enumerate(dst_sizes)]
    pairs = _paired_extents(src, dst)
    moved = sum(n for _, _, n in pairs)
    assert moved == total
    # Source coverage is a prefix walk: consecutive, no overlap.
    seen_src = []
    for s, _, n in pairs:
        seen_src.append((s, n))
    for (a, n1), (b, _) in zip(seen_src, seen_src[1:]):
        assert b >= a  # monotone within/between extents
