"""Tests for repro.telemetry: metrics, spans, Perfetto export, sampler,
the Tracer bridge, and the telemetry-on/off bit-identity guarantee."""

import json

import pytest

from repro.sim import Environment, Store, Tracer
from repro.telemetry import (ChromeTraceError, Counter, Gauge, Histogram,
                             MetricRegistry, Telemetry, TimelineSampler,
                             span, to_chrome_trace, validate_chrome_trace)
from repro.telemetry.scenarios import run_scenario, scenario_names


class TestMetricRegistry:
    def test_counter_get_or_create_is_stable(self):
        registry = MetricRegistry()
        a = registry.counter("pcie.sw0.flits")
        b = registry.counter("pcie.sw0.flits")
        assert a is b
        a.inc(3, time=10.0)
        assert b.value == 3
        assert b.last_time == 10.0

    def test_kind_mismatch_rejected(self):
        registry = MetricRegistry()
        registry.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("x")

    def test_gauge_tracks_min_max(self):
        gauge = MetricRegistry().gauge("depth")
        for value in (4, 9, 2):
            gauge.set(value)
        assert (gauge.value, gauge.minimum, gauge.maximum) == (2, 2, 9)

    def test_hierarchical_names_prefix_filter(self):
        registry = MetricRegistry()
        for name in ("pcie.sw0.port0.queue_depth", "pcie.sw0.drops",
                     "pcie.sw1.drops", "link.l0.flits"):
            registry.counter(name)
        assert registry.names("pcie.sw0") == [
            "pcie.sw0.drops", "pcie.sw0.port0.queue_depth"]
        assert len(registry.names()) == 4
        assert registry.names("pcie.sw") == []   # dotted, not substring

    def test_snapshot_schema_and_json_round_trip(self):
        registry = MetricRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(7, time=5.0)
        registry.histogram("h").observe(100)
        snapshot = registry.snapshot()
        assert snapshot["schema"] == 1
        assert snapshot["tool"] == "repro-telemetry"
        assert snapshot["count"] == 3
        assert set(snapshot["metrics"]) == {"c", "g", "h"}
        assert snapshot["metrics"]["c"]["kind"] == "counter"
        json.dumps(snapshot)


class TestHistogram:
    def test_log_buckets(self):
        hist = Histogram("lat")
        for value in (0, 0.5, 1, 3, 1000):
            hist.observe(value)
        rows = hist.buckets()
        assert rows[0] == (0.0, 1.0, 2)        # 0 and 0.5
        assert (1.0, 2.0, 1) in rows           # 1
        assert (2.0, 4.0, 1) in rows           # 3
        assert (512.0, 1024.0, 1) in rows      # 1000
        assert hist.count == 5
        assert hist.mean == pytest.approx(1004.5 / 5)

    def test_quantile_upper_bound(self):
        hist = Histogram("lat")
        for _ in range(99):
            hist.observe(1)
        hist.observe(1000)
        assert hist.quantile(0.5) == 2.0
        assert hist.quantile(1.0) == 1024.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Histogram("lat").observe(-1)

    def test_empty_mean_raises(self):
        hist = Histogram("lat")
        with pytest.raises(ValueError):
            hist.mean

    def test_empty_quantiles_are_none(self):
        # Percentile snapshots of an idle histogram are absent values,
        # not errors: dashboards snapshot idle series all the time.
        hist = Histogram("lat")
        assert hist.quantile(0.5) is None
        snapshot = hist.to_dict()
        assert snapshot["count"] == 0
        assert snapshot["p50"] is None
        assert snapshot["p95"] is None
        assert snapshot["p99"] is None
        # Out-of-range q still raises, populated or not.
        with pytest.raises(ValueError):
            hist.quantile(1.5)


class TestStrictRegistration:
    def test_register_rejects_duplicates_with_listing(self):
        registry = MetricRegistry()
        registry.register("link.l0.flits", "counter")
        registry.counter("pcie.sw0.drops")
        with pytest.raises(ValueError) as exc:
            registry.register("link.l0.flits", "gauge")
        # The error carries the full inventory, like topology errors.
        assert "link.l0.flits" in str(exc.value)
        assert "pcie.sw0.drops" in str(exc.value)

    def test_register_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown metric kind"):
            MetricRegistry().register("x", "timer")

    def test_register_returns_the_metric(self):
        registry = MetricRegistry()
        counter = registry.register("c", "counter")
        assert counter is registry.counter("c")
        assert isinstance(registry.register("h", "histogram"),
                          Histogram)
        assert isinstance(registry.register("g", "gauge"), Gauge)

    def test_lookup_unknown_name_lists_registry(self):
        registry = MetricRegistry()
        registry.counter("a.one")
        registry.gauge("b.two")
        with pytest.raises(KeyError) as exc:
            registry.lookup("a.oen")
        message = str(exc.value)
        assert "a.one" in message and "b.two" in message
        assert registry.lookup("a.one") is registry.counter("a.one")

    def test_lookup_empty_registry_says_none(self):
        with pytest.raises(KeyError, match=r"\(none\)"):
            MetricRegistry().lookup("anything")

    def test_duplicate_probe_rejected_with_listing(self):
        telemetry = Telemetry()
        telemetry.add_probe("credits.d0.available", lambda: 1.0)
        telemetry.add_probe("credits.d0.granted", lambda: 2.0)
        with pytest.raises(ValueError) as exc:
            telemetry.add_probe("credits.d0.available", lambda: 3.0)
        assert "credits.d0.granted" in str(exc.value)


class TestHistogramSnapshotDelta:
    def test_none_prev_is_full_cumulative_state(self):
        hist = Histogram("lat")
        for value in (1, 3, 1000):
            hist.observe(value)
        delta = hist.snapshot_delta(None)
        assert delta["count"] == 3
        assert delta["sum"] == 1004.0
        assert delta["buckets"] == hist.to_dict()["buckets"]

    def test_empty_window_reports_absent_values(self):
        hist = Histogram("lat")
        hist.observe(5)
        prev = hist.to_dict()
        delta = hist.snapshot_delta(prev)   # nothing new since prev
        assert delta["count"] == 0
        assert delta["sum"] == 0.0
        assert delta["mean"] is None
        assert delta["p50"] is None and delta["p99"] is None
        assert delta["buckets"] == []

    def test_partial_window_quantiles_are_of_the_window(self):
        hist = Histogram("lat")
        for _ in range(100):
            hist.observe(1)            # cumulative p50 lives at 2.0
        prev = hist.to_dict()
        for _ in range(10):
            hist.observe(1000)         # the window is all-slow
        delta = hist.snapshot_delta(prev)
        assert delta["count"] == 10
        assert delta["p50"] == 1024.0   # window quantile, not cumulative
        assert hist.quantile(0.50) == 2.0
        assert delta["buckets"] == [
            {"low": 512.0, "high": 1024.0, "count": 10}]
        assert delta["mean"] == pytest.approx(1000.0)

    def test_newer_snapshot_rejected(self):
        hist = Histogram("lat")
        hist.observe(1)
        hist.observe(2)
        newer = hist.to_dict()
        fresh = Histogram("lat")
        fresh.observe(1)
        with pytest.raises(ValueError, match="newer"):
            fresh.snapshot_delta(newer)

    def test_window_extrema_are_exact_not_bucket_bounds(self):
        hist = Histogram("lat")
        hist.observe(5)
        hist.observe(900)
        hist.snapshot_delta(None)      # close window 0: {5, 900}
        prev = hist.to_dict()
        hist.observe(37)               # window 1: {37, 310}
        hist.observe(310)
        delta = hist.snapshot_delta(prev)
        assert delta["min"] == 37.0    # exact values, not 32.0/512.0
        assert delta["max"] == 310.0
        assert hist.minimum == 5.0 and hist.maximum == 900.0

    def test_window_extrema_reset_between_windows(self):
        hist = Histogram("lat")
        hist.observe(1000)
        hist.snapshot_delta(None)      # closes the first window
        prev = hist.to_dict()
        hist.observe(7)
        delta = hist.snapshot_delta(prev)
        assert delta["min"] == 7.0     # the 1000 belongs to window 1
        assert delta["max"] == 7.0

    def test_empty_window_extrema_are_absent(self):
        hist = Histogram("lat")
        hist.observe(5)
        hist.snapshot_delta(None)
        prev = hist.to_dict()
        delta = hist.snapshot_delta(prev)
        assert delta["count"] == 0
        assert delta["min"] is None and delta["max"] is None

    def test_error_path_leaves_the_extrema_window_open(self):
        hist = Histogram("lat")
        hist.observe(1)
        hist.observe(2)
        newer = hist.to_dict()
        fresh = Histogram("lat")
        fresh.observe(42)
        with pytest.raises(ValueError, match="newer"):
            fresh.snapshot_delta(newer)
        delta = fresh.snapshot_delta(None)   # the 42 is still windowed
        assert delta["min"] == 42.0 and delta["max"] == 42.0


class TestEnvironmentHook:
    def test_off_by_default(self):
        assert Environment().telemetry is None

    def test_true_builds_default_instance(self):
        env = Environment(telemetry=True)
        assert isinstance(env.telemetry, Telemetry)
        assert env.telemetry.env is env

    def test_explicit_instance_is_bound(self):
        telemetry = Telemetry()
        env = Environment(telemetry=telemetry)
        assert env.telemetry is telemetry

    def test_rebinding_to_second_env_rejected(self):
        telemetry = Telemetry()
        Environment(telemetry=telemetry)
        with pytest.raises(ValueError, match="already bound"):
            Environment(telemetry=telemetry)


class TestSpans:
    def test_span_records_duration_at_sim_time(self):
        env = Environment(telemetry=True)

        def work():
            with span(env, "cfc.rebalance", grants=3):
                yield env.timeout(25.0)

        env.process(work())
        env.run(until=100.0)
        events = env.telemetry.events
        begins = [e for e in events if e[0] == "B"]
        ends = [e for e in events if e[0] == "E"]
        assert len(begins) == len(ends) == 1
        assert begins[0][1] == 0.0 and ends[0][1] == 25.0
        assert begins[0][3] == "cfc.rebalance"
        assert begins[0][4] == {"grants": 3}

    def test_track_defaults_to_dotted_prefix(self):
        env = Environment(telemetry=True)
        with span(env, "pcie.sw0.forward"):
            pass
        with span(env, "flat"):
            pass
        tracks = env.telemetry.track_names()
        assert "pcie.sw0" in tracks
        assert "main" in tracks

    def test_off_path_is_shared_noop(self):
        env = Environment()
        first = span(env, "anything", key="value")
        second = span(env, "other")   # fcc: allow[span-context]  (off-path singleton)
        assert first is second            # the shared singleton
        with first:
            pass                          # and it is a context manager


class TestPerfettoExport:
    def _traced_env(self):
        env = Environment(telemetry=True)

        def work():
            with span(env, "app.step", n=1):
                yield env.timeout(10.0)
            env.telemetry.instant("app.mark", level=2)

        env.process(work())
        env.run(until=50.0)
        return env

    def test_export_validates_and_is_json(self):
        env = self._traced_env()
        payload = to_chrome_trace(env.telemetry)
        count = validate_chrome_trace(payload)
        assert count == len(payload["traceEvents"])
        json.dumps(payload)

    def test_thread_metadata_per_track(self):
        env = self._traced_env()
        payload = to_chrome_trace(env.telemetry)
        meta = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta}
        assert "repro simulation" in names
        assert "app" in names

    def test_ts_converted_to_microseconds(self):
        env = self._traced_env()
        payload = to_chrome_trace(env.telemetry)
        end = next(e for e in payload["traceEvents"] if e["ph"] == "E")
        assert end["ts"] == pytest.approx(10.0 / 1000.0)

    def test_validator_rejects_garbage(self):
        with pytest.raises(ChromeTraceError):
            validate_chrome_trace([])
        with pytest.raises(ChromeTraceError):
            validate_chrome_trace({"traceEvents": []})
        with pytest.raises(ChromeTraceError):
            validate_chrome_trace({"traceEvents": [{"ph": "Z", "pid": 1}]})

    def test_validator_rejects_unbalanced_spans(self):
        events = [{"ph": "B", "ts": 1.0, "pid": 1, "tid": 1, "name": "x"}]
        with pytest.raises(ChromeTraceError, match="unclosed"):
            validate_chrome_trace({"traceEvents": events})
        events = [{"ph": "E", "ts": 1.0, "pid": 1, "tid": 1}]
        with pytest.raises(ChromeTraceError, match="without a matching"):
            validate_chrome_trace({"traceEvents": events})

    def test_validator_rejects_backwards_time(self):
        events = [
            {"ph": "i", "ts": 5.0, "pid": 1, "tid": 1, "name": "a"},
            {"ph": "i", "ts": 1.0, "pid": 1, "tid": 1, "name": "b"},
        ]
        with pytest.raises(ChromeTraceError, match="backwards"):
            validate_chrome_trace({"traceEvents": events})


class TestTimelineSampler:
    def test_probes_sampled_into_gauges_and_counters(self):
        env = Environment(telemetry=True)
        state = {"depth": 0}
        env.telemetry.add_probe("sw.q", lambda: state["depth"],
                                track="sw")

        def mutate():
            for depth in (3, 7, 2):
                state["depth"] = depth
                yield env.timeout(100.0)

        sampler = TimelineSampler(env, interval_ns=100.0).start()
        env.process(mutate())
        env.run(until=301.0)
        assert sampler.samples_taken == 3
        gauge = env.telemetry.registry.get("sw.q")
        assert gauge.maximum == 7
        # The sampler started first, so at each coincident timestamp
        # it observes the value set in the *previous* interval.
        counters = [e for e in env.telemetry.events if e[0] == "C"]
        assert [value for _, _, _, value in counters] == [3, 7, 2]

    def test_needs_telemetry(self):
        with pytest.raises(ValueError, match="needs telemetry"):
            TimelineSampler(Environment())

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            TimelineSampler(Environment(telemetry=True), interval_ns=0)

    def test_start_is_idempotent(self):
        env = Environment(telemetry=True)
        sampler = TimelineSampler(env, interval_ns=10.0)
        assert sampler.start() is sampler
        sampler.start()
        env.run(until=25.0)
        assert sampler.samples_taken == 2   # one loop, not two


class TestTracerBridge:
    def test_ring_buffer_caps_records(self):
        tracer = Tracer(capacity=3)
        for i in range(10):
            tracer.record(float(i), "tick", i=i)
        assert len(tracer.records) == 3
        assert [r.i for r in tracer.records] == [7, 8, 9]

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_unbounded_list_by_default(self):
        tracer = Tracer()
        assert tracer.records == []
        tracer.record(1.0, "tick")
        assert tracer.count("tick") == 1

    def test_records_route_through_telemetry(self):
        env = Environment(telemetry=True)
        tracer = Tracer(telemetry=env.telemetry)
        tracer.record(5.0, "link.retry", link="l0")
        instants = [e for e in env.telemetry.events if e[0] == "i"]
        assert len(instants) == 1
        assert instants[0][1] == 5.0
        assert instants[0][3] == "link.retry"
        counter = env.telemetry.registry.get("trace.link.retry")
        assert counter.value == 1

    def test_disabled_tracer_skips_telemetry_too(self):
        env = Environment(telemetry=True)
        tracer = Tracer(enabled=False, telemetry=env.telemetry)
        tracer.record(1.0, "x")
        assert env.telemetry.events == []


class TestScenarios:
    def test_scenario_names(self):
        assert scenario_names() == ["interleave", "starvation", "t2"]

    def test_unknown_scenario_raises(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            run_scenario("nope")

    def test_t2_walk_shows_the_hierarchy(self):
        result = run_scenario("t2")
        mean = result.summary["mean_ns"]
        assert mean["l1"] < mean["l2"] < mean["local"] < mean["remote"]
        assert result.summary["remote_vs_local"] > 10.0

    def test_starvation_quiet_flow_stalls(self):
        result = run_scenario("starvation")
        summary = result.summary
        # The C5 signature: the quiet burst runs far slower than an
        # unstarved window, while the hot flow never stalls.
        assert summary["burst_vs_ideal"] > 3.0
        assert summary["quiet_stall_ns"] > summary["hot_stall_ns"]
        assert summary["final_grants"]["quiet"] < \
            summary["final_grants"]["hot"]
        stalls = result.telemetry.registry.get("credits.egress0.stalls")
        assert stalls is not None and stalls.value > 0

    def test_scenarios_export_valid_traces(self):
        for name in scenario_names():
            result = run_scenario(name)
            count = validate_chrome_trace(result.chrome_trace())
            assert count > 0
            snapshot = result.metrics_snapshot()
            assert snapshot["scenario"] == name
            json.dumps(snapshot)


class TestBitIdentity:
    """Telemetry must never change what the simulation computes."""

    def _trace(self, telemetry):
        env = Environment(telemetry=telemetry)
        store = Store(env)
        log = []

        def producer():
            for i in range(50):
                with span(env, "prod.put", i=i):
                    yield env.timeout(3.0)
                    yield store.put(i)

        def consumer():
            while True:
                item = yield store.get()
                log.append((env.now, item))
                yield env.timeout(1.0)

        env.process(producer(), name="prod")
        env.process(consumer(), name="cons", daemon=True)
        env.run(until=500.0)
        return log, env.stats["events_processed"]

    def test_telemetry_does_not_change_scheduling(self):
        plain, plain_events = self._trace(False)
        observed, observed_events = self._trace(True)
        assert plain == observed
        # Spans/instants/counters add zero simulation events.
        assert plain_events == observed_events

    @pytest.mark.parametrize("name", ["t2", "starvation", "interleave"])
    def test_scenario_results_identical_on_off(self, name):
        on = run_scenario(name, telemetry=True)
        off = run_scenario(name, telemetry=False)
        assert on.summary == off.summary
