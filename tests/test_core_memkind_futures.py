"""Tests for the memkind veneer and distributed futures."""

import pytest

from repro.core import (
    MEMKIND_DEFAULT,
    MEMKIND_FABRIC,
    MEMKIND_LOCAL,
    DistributedFuture,
    FutureExecutor,
    HeapError,
    MemkindAllocator,
    MovementOrchestrator,
    UnifiedHeap,
    gather,
)
from repro.infra import ClusterSpec, build_cluster
from repro.sim import Environment


def make_allocator(env):
    cluster = build_cluster(env, ClusterSpec(hosts=1))
    host = cluster.host(0)
    engine = MovementOrchestrator(env).attach_host(host)
    heap = UnifiedHeap(env, host, engine)
    heap.add_bin("local", start=1 << 20, size=1 << 20, tier="local",
                 is_remote=False)
    heap.add_bin("fam0", start=host.remote_base("fam0"), size=1 << 20,
                 tier="cpuless-numa", is_remote=True)
    return MemkindAllocator(heap)


class TestMemkind:
    def test_local_kind_places_locally(self):
        env = Environment()
        allocator = make_allocator(env)
        pointer = allocator.kind_malloc(MEMKIND_LOCAL, 4096)
        assert pointer.tier == "local"

    def test_fabric_kind_places_remotely(self):
        env = Environment()
        allocator = make_allocator(env)
        pointer = allocator.kind_malloc(MEMKIND_FABRIC, 4096)
        assert pointer.tier == "cpuless-numa"

    def test_calloc_multiplies(self):
        env = Environment()
        allocator = make_allocator(env)
        pointer = allocator.kind_calloc(MEMKIND_DEFAULT, 16, 64)
        assert allocator.usable_size(pointer) == 1024

    def test_detect_kind(self):
        env = Environment()
        allocator = make_allocator(env)
        pointer = allocator.kind_malloc(MEMKIND_FABRIC, 64)
        assert allocator.detect_kind(pointer) is MEMKIND_FABRIC

    def test_free_with_autodetect(self):
        env = Environment()
        allocator = make_allocator(env)
        pointer = allocator.kind_malloc(MEMKIND_LOCAL, 64)
        allocator.kind_free(None, pointer)
        assert not pointer.valid
        assert allocator.stats() == {}

    def test_free_with_wrong_kind_rejected(self):
        env = Environment()
        allocator = make_allocator(env)
        pointer = allocator.kind_malloc(MEMKIND_LOCAL, 64)
        with pytest.raises(HeapError):
            allocator.kind_free(MEMKIND_FABRIC, pointer)

    def test_foreign_pointer_rejected(self):
        env = Environment()
        allocator = make_allocator(env)
        foreign = allocator.heap.allocate(64)   # not via the allocator
        with pytest.raises(HeapError):
            allocator.kind_free(None, foreign)

    def test_custom_kind_and_pinning(self):
        env = Environment()
        allocator = make_allocator(env)
        kind = allocator.create_kind("memkind_hot_pinned",
                                     prefer_tier="local", pinned=True)
        pointer = allocator.kind_malloc(kind, 64)
        assert allocator.heap.object_of(pointer).pinned
        with pytest.raises(ValueError):
            allocator.create_kind("memkind_hot_pinned", None)

    def test_stats_by_kind(self):
        env = Environment()
        allocator = make_allocator(env)
        allocator.kind_malloc(MEMKIND_LOCAL, 128)
        allocator.kind_malloc(MEMKIND_LOCAL, 128)
        allocator.kind_malloc(MEMKIND_FABRIC, 64)
        stats = allocator.stats()
        assert stats["memkind_local"] == 256
        assert stats["memkind_fabric"] == 64


class TestFutures:
    def test_submit_resolves_with_return_value(self):
        env = Environment()
        executor = FutureExecutor(env, "host0")

        def work():
            yield env.timeout(10)
            return 21

        future = executor.submit(work())
        env.run(until=100)
        assert future.done and future.value == 21
        assert future.owner == "host0"

    def test_wait_from_another_process(self):
        env = Environment()
        executor = FutureExecutor(env, "host0")

        def work():
            yield env.timeout(10)
            return "data"

        future = executor.submit(work())
        seen = []

        def consumer():
            value = yield future.wait()
            seen.append((env.now, value))

        env.process(consumer())
        env.run(until=100)
        assert seen == [(10, "data")]

    def test_rejection_propagates(self):
        env = Environment()
        executor = FutureExecutor(env, "host0")

        def bad():
            yield env.timeout(1)
            raise ValueError("nope")

        future = executor.submit(bad())
        caught = []

        def consumer():
            try:
                yield future.wait()
            except ValueError as error:
                caught.append(str(error))

        env.process(consumer())
        env.run(until=100)
        assert caught == ["nope"]

    def test_then_chains_transformations(self):
        env = Environment()
        executor = FutureExecutor(env, "host0")

        def work():
            yield env.timeout(5)
            return 10

        final = executor.submit(work()).then(lambda v: v * 2) \
            .then(lambda v: v + 1)
        env.run(until=100)
        assert final.value == 21

    def test_then_transfers_ownership(self):
        env = Environment()
        a = FutureExecutor(env, "hostA")
        b = FutureExecutor(env, "hostB")

        def work():
            yield env.timeout(1)
            return 1

        upstream = a.submit(work())
        downstream = upstream.then(lambda v: v, executor=b)
        env.run(until=100)
        assert upstream.owner == "hostA"
        assert downstream.owner == "hostB"

    def test_then_flattens_nested_future(self):
        env = Environment()
        executor = FutureExecutor(env, "host0")

        def inner():
            yield env.timeout(3)
            return "inner-value"

        future = executor.value(0).then(
            lambda _: executor.submit(inner()))
        env.run(until=100)
        assert future.value == "inner-value"

    def test_gather_preserves_order(self):
        env = Environment()
        executor = FutureExecutor(env, "host0")

        def work(delay, tag):
            yield env.timeout(delay)
            return tag

        futures = [executor.submit(work(30, "slow")),
                   executor.submit(work(10, "fast"))]
        joined = gather(env, futures)
        env.run(until=100)
        assert joined.value == ["slow", "fast"]

    def test_gather_rejects_on_any_failure(self):
        env = Environment()
        executor = FutureExecutor(env, "host0")

        def bad():
            yield env.timeout(1)
            raise RuntimeError("boom")

        def good():
            yield env.timeout(2)
            return 1

        joined = gather(env, [executor.submit(good()),
                              executor.submit(bad())])
        env.run(until=100)
        assert joined.done
        with pytest.raises(RuntimeError):
            _ = joined.value

    def test_unresolved_value_raises(self):
        env = Environment()
        future = DistributedFuture(env, "host0")
        with pytest.raises(RuntimeError):
            _ = future.value
