"""Tests for elastic transactions and the movement service (DP#1)."""

import pytest

from repro.core import ETrans, MovementOrchestrator, SequentialPrefetcher
from repro.core.etrans import _paired_extents
from repro.infra import ClusterSpec, build_cluster
from repro.sim import Environment


def setup_host(env, **orch_kw):
    cluster = build_cluster(env, ClusterSpec(hosts=1))
    orchestrator = MovementOrchestrator(env, **orch_kw)
    host = cluster.host(0)
    engine = orchestrator.attach_host(host)
    return cluster, host, engine, orchestrator


def run(env, gen, horizon=500_000_000):
    proc = env.process(gen)
    env.run(until=env.now + horizon)
    assert proc.triggered
    if not proc.ok:
        raise proc.value
    return proc.value


class TestETransValidation:
    def test_byte_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ETrans(src_list=[(0, 128)], dst_list=[(0x1000, 64)])

    def test_empty_lists_rejected(self):
        with pytest.raises(ValueError):
            ETrans(src_list=[], dst_list=[(0, 64)])

    def test_bad_ownership_rejected(self):
        with pytest.raises(ValueError):
            ETrans(src_list=[(0, 64)], dst_list=[(64, 64)],
                   ownership="nobody")

    def test_empty_extent_rejected(self):
        with pytest.raises(ValueError):
            ETrans(src_list=[(0, 0)], dst_list=[(0, 0)])

    def test_priority_from_attributes(self):
        trans = ETrans(src_list=[(0, 64)], dst_list=[(64, 64)],
                       attributes={"priority": 1})
        assert trans.priority == 1


class TestPairedExtents:
    def test_equal_extents(self):
        pairs = _paired_extents([(0, 128)], [(0x1000, 128)])
        assert pairs == [(0, 0x1000, 128)]

    def test_scatter_to_gather(self):
        pairs = _paired_extents([(0, 64), (0x200, 64)], [(0x1000, 128)])
        assert pairs == [(0, 0x1000, 64), (0x200, 0x1040, 64)]

    def test_mismatched_boundaries(self):
        pairs = _paired_extents([(0, 100), (0x200, 28)],
                                [(0x1000, 64), (0x2000, 64)])
        assert sum(n for _, _, n in pairs) == 128
        assert pairs[0] == (0, 0x1000, 64)


class TestImmediateExecution:
    def test_local_to_remote_copy_completes(self):
        env = Environment()
        cluster, host, engine, orch = setup_host(env)
        base = host.remote_base("fam0")
        trans = ETrans(src_list=[(0x10000, 4096)],
                       dst_list=[(base + 0x0, 4096)],
                       immediate=True)

        def go():
            handle = engine.submit(trans)
            yield handle.wait()
            return handle

        handle = run(env, go())
        assert handle.completed
        assert handle.latency_ns > 0
        assert orch.bytes_moved == 4096
        assert engine.immediate_count == 1

    def test_silent_ownership_returns_no_handle(self):
        env = Environment()
        _, host, engine, orch = setup_host(env)
        trans = ETrans(src_list=[(0, 64)], dst_list=[(0x5000, 64)],
                       immediate=True, ownership="silent")
        handle = engine.submit(trans)
        assert handle is None
        env.run(until=1_000_000)
        assert orch.bytes_moved == 64

    def test_agent_ownership_fires_callback(self):
        env = Environment()
        _, host, engine, _ = setup_host(env)
        fired = []
        trans = ETrans(src_list=[(0, 64)], dst_list=[(0x5000, 64)],
                       immediate=True, ownership="agent",
                       callback=fired.append)
        engine.submit(trans)
        env.run(until=1_000_000)
        assert fired and fired[0] is trans


class TestDelegatedExecution:
    def test_delegated_runs_on_agent(self):
        env = Environment()
        _, host, engine, orch = setup_host(env)
        trans = ETrans(src_list=[(0, 1024)], dst_list=[(0x8000, 1024)])

        def go():
            handle = engine.submit(trans)
            yield handle.wait()

        run(env, go())
        assert engine.delegated_count == 1
        assert orch.agent(host.name).executed == 1

    def test_priority_ordering_on_agent(self):
        env = Environment()
        _, host, engine, orch = setup_host(env)
        order = []

        def make(name, priority):
            return ETrans(src_list=[(0, 64 * 1024)],
                          dst_list=[(0x100000, 64 * 1024)],
                          ownership="agent",
                          attributes={"priority": priority},
                          callback=lambda t, n=name: order.append(n))

        # Submit a bulk transfer, then while it runs, queue a low- and
        # a high-priority one; the high-priority must run first.
        engine.submit(make("first", 5))
        engine.submit(make("bulk", 9))
        engine.submit(make("urgent", 0))
        env.run(until=500_000_000)
        # All three are queued before the agent starts: strict
        # priority order wins regardless of submission order.
        assert order == ["urgent", "first", "bulk"]

    def test_traffic_matrix_records_src_dst_regions(self):
        env = Environment()
        _, host, engine, orch = setup_host(env)
        base = host.remote_base("fam0")
        trans = ETrans(src_list=[(0x10000, 256)],
                       dst_list=[(base, 256)], immediate=True)

        def go():
            handle = engine.submit(trans)
            yield handle.wait()

        run(env, go())
        assert orch.traffic_matrix == {("host0.dram", "fam0"): 256}
        assert "host0.dram" in orch.format_traffic_matrix()


class TestThrottling:
    def test_bandwidth_cap_slows_transfer(self):
        def elapsed(bw):
            env = Environment()
            _, host, engine, _ = setup_host(
                env, remote_bw_bytes_per_us=bw)
            trans = ETrans(src_list=[(0, 256 * 1024)],
                           dst_list=[(0x100000, 256 * 1024)],
                           immediate=True)

            def go():
                start = env.now
                handle = engine.submit(trans)
                yield handle.wait()
                return env.now - start

            return run(env, go())

        fast = elapsed(1_000_000.0)
        slow = elapsed(1_000.0)
        assert slow > 2 * fast

    def test_duplicate_host_attach_rejected(self):
        env = Environment()
        cluster = build_cluster(env, ClusterSpec(hosts=1))
        orch = MovementOrchestrator(env)
        orch.attach_host(cluster.host(0))
        with pytest.raises(ValueError):
            orch.attach_host(cluster.host(0))


class TestPrefetcher:
    def test_strided_stream_gets_prefetched(self):
        env = Environment()
        cluster = build_cluster(env, ClusterSpec(hosts=1))
        host = cluster.host(0)
        prefetcher = SequentialPrefetcher(env, host, depth=8)
        base = host.remote_base("fam0")
        latencies = []

        def go():
            for i in range(64):
                addr = base + i * 64
                prefetcher.observe(addr)
                start = env.now
                yield from host.mem.access(addr, False)
                latencies.append(env.now - start)

        run(env, go())
        assert prefetcher.prefetches_issued > 0
        # The tail of the stream should mostly hit in cache.
        tail = latencies[16:]
        hits = sum(1 for latency in tail if latency < 50)
        assert hits > len(tail) // 2

    def test_random_stream_not_prefetched(self):
        env = Environment()
        cluster = build_cluster(env, ClusterSpec(hosts=1))
        host = cluster.host(0)
        prefetcher = SequentialPrefetcher(env, host)
        import random        # fcc: allow[seeded-rng]
        rng = random.Random(7)   # fcc: allow[seeded-rng]  (explicit seed)
        for _ in range(50):
            prefetcher.observe(rng.randrange(0, 1 << 20, 64))
        assert prefetcher.prefetches_issued == 0

    def test_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            SequentialPrefetcher(env, None, depth=0)
