"""Tests for the host memory hierarchy and address map."""

import pytest

from repro import params
from repro.mem import AddressMap, CacheConfig, HostMemorySystem, Region
from repro.sim import Environment


def flat_backend(env, latency, log=None, tag=""):
    def backend(addr, nbytes, is_write):
        if log is not None:
            log.append((tag, addr, nbytes, is_write))
        yield env.timeout(latency)

    return backend


def tiny_configs():
    return (
        CacheConfig(name="l1", size_bytes=4 * 64, assoc=2,
                    read_ns=params.L1_READ_NS, write_ns=params.L1_WRITE_NS),
        CacheConfig(name="l2", size_bytes=16 * 64, assoc=4,
                    read_ns=params.L2_READ_NS, write_ns=params.L2_WRITE_NS),
    )


def make_system(env, log=None):
    amap = AddressMap()
    amap.add(Region(start=0, size=1 << 20, name="dram",
                    backend=flat_backend(env, params.LOCAL_MEM_READ_NS,
                                         log, "local")))
    amap.add(Region(start=1 << 20, size=1 << 20, name="fam0",
                    backend=flat_backend(env, params.REMOTE_MEM_READ_NS,
                                         log, "remote"),
                    is_remote=True))
    return HostMemorySystem(env, amap, cache_configs=tiny_configs())


def run_access(env, mem, addr, is_write=False):
    result = {}

    def go():
        level = yield from mem.access(addr, is_write)
        result["level"] = level
        result["time"] = env.now

    start = env.now
    env.process(go())
    env.run(until=env.now + 1_000_000)
    result["latency"] = result["time"] - start
    return result


class TestAddressMap:
    def test_resolve(self):
        env = Environment()
        amap = AddressMap()
        amap.add(Region(0, 100, "a", flat_backend(env, 1)))
        amap.add(Region(100, 100, "b", flat_backend(env, 1)))
        assert amap.resolve(50).name == "a"
        assert amap.resolve(100).name == "b"
        with pytest.raises(KeyError):
            amap.resolve(500)

    def test_overlap_rejected(self):
        env = Environment()
        amap = AddressMap()
        amap.add(Region(0, 100, "a", flat_backend(env, 1)))
        with pytest.raises(ValueError):
            amap.add(Region(50, 100, "b", flat_backend(env, 1)))

    def test_span(self):
        env = Environment()
        amap = AddressMap()
        assert amap.span == 0
        amap.add(Region(0, 128, "a", flat_backend(env, 1)))
        assert amap.span == 128


class TestHierarchyLevels:
    def test_first_access_goes_to_backend(self):
        env = Environment()
        mem = make_system(env)
        result = run_access(env, mem, 0x100)
        assert result["level"] == "local"
        assert result["latency"] == pytest.approx(params.LOCAL_MEM_READ_NS)

    def test_second_access_hits_l1(self):
        env = Environment()
        mem = make_system(env)
        run_access(env, mem, 0x100)
        result = run_access(env, mem, 0x100)
        assert result["level"] == "l1"
        assert result["latency"] == pytest.approx(params.L1_READ_NS)

    def test_l1_capacity_spill_hits_l2(self):
        env = Environment()
        mem = make_system(env)
        # L1 holds 4 lines (2 sets x 2 ways); stride to one set.
        addrs = [i * (2 * 64) for i in range(4)]  # set 0, 4 tags, assoc 2
        for addr in addrs:
            run_access(env, mem, addr)
        result = run_access(env, mem, addrs[0])
        assert result["level"] == "l2"
        assert result["latency"] == pytest.approx(params.L2_READ_NS)

    def test_remote_region_latency(self):
        env = Environment()
        mem = make_system(env)
        result = run_access(env, mem, 1 << 20)
        assert result["level"] == "remote"
        assert result["latency"] == pytest.approx(params.REMOTE_MEM_READ_NS)
        assert mem.remote_accesses == 1

    def test_remote_line_cached_after_first_touch(self):
        """The paper: host caches transparently accelerate FAM access."""
        env = Environment()
        mem = make_system(env)
        run_access(env, mem, 1 << 20)
        result = run_access(env, mem, 1 << 20)
        assert result["level"] == "l1"

    def test_backend_receives_region_relative_address(self):
        env = Environment()
        log = []
        mem = make_system(env, log)
        run_access(env, mem, (1 << 20) + 0x40)
        assert log[0] == ("remote", 0x40, 64, False)


class TestWritebacks:
    def test_dirty_eviction_writes_back_to_backend(self):
        env = Environment()
        log = []
        mem = make_system(env, log)
        # Dirty a line, then evict it from both levels via conflicting
        # fills (same set in L1 and L2).
        victim = 0x0
        run_access(env, mem, victim, is_write=True)
        stride = 16 * 64  # same set in both tiny caches
        for i in range(1, 20):
            run_access(env, mem, victim + i * stride)
        env.run(until=env.now + 1_000_000)
        writebacks = [entry for entry in log if entry[3] and entry[1] == victim]
        assert writebacks, "dirty line was never written back"

    def test_snoop_invalidate_reports_dirty(self):
        env = Environment()
        mem = make_system(env)
        run_access(env, mem, 0x200, is_write=True)
        assert mem.invalidate(0x200) is True
        assert mem.invalidate(0x200) is False

    def test_flush_returns_dirty_lines(self):
        env = Environment()
        mem = make_system(env)
        run_access(env, mem, 0x200, is_write=True)
        run_access(env, mem, 0x300, is_write=False)
        dirty = mem.flush(); assert dirty == [0x200]


class TestStats:
    def test_hit_rate_accounting(self):
        env = Environment()
        mem = make_system(env)
        run_access(env, mem, 0)
        run_access(env, mem, 0)
        run_access(env, mem, 0)
        assert mem.accesses == 3
        assert mem.hit_rate("l1") == pytest.approx(2 / 3)
        assert mem.backend_hits["local"] == 1


class TestRegionPartitioning:
    def test_streaming_region_spares_the_working_set(self):
        """DP#1: partition the cache so a bulk FAM scan cannot thrash."""
        def run_scan(partitioned):
            env = Environment()
            mem = make_system(env)
            if partitioned:
                mem.partition_region("fam0", ways=1)
            # Warm a local working set that fits L1 (4 lines).
            working_set = [0x000, 0x040, 0x080]
            for addr in working_set:
                run_access(env, mem, addr)
            # Stream 64 remote lines through the hierarchy.
            for i in range(64):
                run_access(env, mem, (1 << 20) + i * 64)
            # Measure the working set again.
            total = 0.0
            for addr in working_set:
                total += run_access(env, mem, addr)["latency"]
            return total / len(working_set)

        assert run_scan(partitioned=True) < run_scan(partitioned=False)
