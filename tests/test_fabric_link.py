"""Tests for physical + link layers: timing, CFC, retry, control lane."""

import pytest

from repro import params
from repro.fabric import Channel, LinkLayer, Packet, PacketKind, PhysicalLayer, bifurcate, fragment
from repro.sim import Environment, SimRng


def mem_write(nbytes=64, channel=Channel.CXL_MEM):
    return Packet(kind=PacketKind.MEM_WR, channel=channel, src=0, dst=1,
                  nbytes=nbytes)


class TestPhysicalLayer:
    def test_serialization_time_matches_bandwidth(self):
        env = Environment()
        lp = params.LinkParams(lanes=16, gt_per_s=64.0)
        phys = PhysicalLayer(env, lp)
        flit = fragment(mem_write())[0]
        times = []

        def run():
            yield from phys.transmit(flit)
            times.append(env.now)

        env.process(run())
        env.run()
        expected = 68 / (16 * 64 / 8) + lp.propagation_ns
        assert times[0] == pytest.approx(expected)

    def test_wire_serializes_one_flit_at_a_time(self):
        env = Environment()
        lp = params.LinkParams(lanes=4, gt_per_s=32.0, propagation_ns=0.0)
        phys = PhysicalLayer(env, lp)
        done = []

        def run(tag):
            flit = fragment(mem_write())[0]
            yield from phys.transmit(flit)
            done.append((tag, env.now))

        for tag in range(3):
            env.process(run(tag))
        env.run()
        ser = 68 / (4 * 32 / 8)
        finish_times = [t for _, t in done]
        assert finish_times == pytest.approx([ser, 2 * ser, 3 * ser])

    def test_narrow_link_is_slower(self):
        wide = params.LinkParams(lanes=16)
        narrow = params.LinkParams(lanes=4)
        assert narrow.serialization_ns(68) == pytest.approx(
            4 * wide.serialization_ns(68))

    def test_rejects_bad_bifurcation(self):
        env = Environment()
        with pytest.raises(ValueError):
            PhysicalLayer(env, params.LinkParams(lanes=3))

    def test_utilization_tracking(self):
        env = Environment()
        phys = PhysicalLayer(env, params.LinkParams())

        def run():
            for _ in range(10):
                yield from phys.transmit(fragment(mem_write())[0])

        env.process(run())
        env.run()
        assert 0.0 < phys.utilization(env.now) <= 1.0


class TestBifurcate:
    def test_x16_splits_into_4_x4(self):
        children = bifurcate(params.LinkParams(lanes=16, credits=32), 4)
        assert len(children) == 4
        assert all(c.lanes == 4 for c in children)
        assert all(c.credits == 8 for c in children)

    def test_x16_splits_into_2_x8(self):
        children = bifurcate(params.LinkParams(lanes=16), 2)
        assert [c.lanes for c in children] == [8, 8]

    def test_invalid_ways_rejected(self):
        with pytest.raises(ValueError):
            bifurcate(params.LinkParams(lanes=16), 3)

    def test_x4_cannot_split(self):
        with pytest.raises(ValueError):
            bifurcate(params.LinkParams(lanes=4), 4)


class TestLinkLayerCfc:
    def _drain(self, env, link, consumed, delay=0.0):
        def drain():
            while True:
                flit = yield link.rx.get()
                if delay:
                    yield env.timeout(delay)
                link.consume(flit)
                consumed.append((env.now, flit))
        env.process(drain())

    def test_flits_flow_end_to_end(self):
        env = Environment()
        link = LinkLayer(env, name="l0")
        consumed = []
        self._drain(env, link, consumed)

        def send():
            for flit in fragment(mem_write(nbytes=256)):
                yield link.send(flit)

        env.process(send())
        env.run(until=1_000)
        assert len(consumed) == len(fragment(mem_write(nbytes=256)))

    def test_credits_bound_inflight_flits(self):
        env = Environment()
        lp = params.LinkParams(credits=4)
        link = LinkLayer(env, lp, name="l0")
        consumed = []
        # Slow consumer: 100ns per flit, so credits should throttle.
        self._drain(env, link, consumed, delay=100.0)

        def send():
            for _ in range(20):
                yield link.send(fragment(mem_write())[0])

        env.process(send())
        env.run(until=50_000)
        assert len(consumed) == 20
        assert link.max_rx_occupancy <= 4

    def test_credit_starved_sender_blocks(self):
        env = Environment()
        lp = params.LinkParams(credits=2)
        link = LinkLayer(env, lp, name="l0")
        # No consumer at all: only `credits` flits can be delivered.
        def send():
            for _ in range(10):
                yield link.send(fragment(mem_write())[0])

        env.process(send())
        env.run(until=10_000)
        assert len(link.rx.items) == 2

    def test_overcommit_allows_deeper_pipeline(self):
        env = Environment()
        lp = params.LinkParams(credits=2)
        link = LinkLayer(env, lp, name="l0", overcommit=2.0)

        def send():
            for _ in range(10):
                yield link.send(fragment(mem_write())[0])

        env.process(send())
        env.run(until=10_000)
        assert len(link.rx.items) == 4  # 2 credits x 2.0 overcommit

    def test_grant_and_revoke_credits(self):
        env = Environment()
        lp = params.LinkParams(credits=2)
        link = LinkLayer(env, lp, name="l0")
        link.grant_credits(0, 3)
        assert link.credits_granted(0) == 5

        def send():
            for _ in range(10):
                yield link.send(fragment(mem_write())[0])

        env.process(send())
        env.run(until=10_000)
        assert len(link.rx.items) == 5

    def test_revoke_reduces_future_grants(self):
        env = Environment()
        lp = params.LinkParams(credits=8)
        link = LinkLayer(env, lp, name="l0")

        def revoke():
            yield link.revoke_credits(0, 6)

        env.process(revoke())
        env.run(until=100)
        assert link.credits_granted(0) == 2
        assert link.credits_available(0) == 2

    def test_retransmission_on_error(self):
        env = Environment()
        link = LinkLayer(env, name="l0", error_rate=0.5, rng=SimRng(42))
        consumed = []
        self._drain(env, link, consumed)

        def send():
            for _ in range(50):
                yield link.send(fragment(mem_write())[0])

        env.process(send())
        env.run(until=100_000)
        assert len(consumed) == 50
        assert link.retransmissions > 0

    def test_control_lane_bypasses_data_credits(self):
        env = Environment()
        lp = params.LinkParams(credits=1)
        link = LinkLayer(env, lp, name="l0", control_lane=True)
        # Saturate data credits with no consumer...
        def send_data():
            for _ in range(5):
                yield link.send(fragment(mem_write())[0])

        # ...control flits must still get through.
        def send_ctrl():
            yield env.timeout(10)
            ctrl = Packet(kind=PacketKind.CTRL_REQ, channel=Channel.CONTROL,
                          src=0, dst=1, nbytes=0)
            for flit in fragment(ctrl):
                yield link.send(flit)

        env.process(send_data())
        env.process(send_ctrl())
        env.run(until=10_000)
        kinds = [f.packet.kind for f in link.rx.items]
        assert PacketKind.CTRL_REQ in kinds

    def test_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            LinkLayer(env, vcs=0)
        with pytest.raises(ValueError):
            LinkLayer(env, overcommit=0.5)
        with pytest.raises(ValueError):
            LinkLayer(env, error_rate=1.0)
