"""Kernel fast-path smoke tests: the pooled path must not allocate.

The perf claim itself (events/sec) is recorded by
``benchmarks/run_all.py`` — wall-clock assertions are too machine-
dependent for CI.  What CI *can* assert is the mechanism: once the
free lists are warm, steady-state stepping recycles every Timeout and
wakeup hook, so the live-object count across a long run stays flat.
"""

import gc
import sys

import pytest

from repro.sim import Environment

#: Tracing (coverage, debuggers) attributes frame objects to the hot
#: path and defeats the refcount-based recycling guard.
_TRACED = sys.gettrace() is not None


def _tick_run(procs: int, steps: int) -> Environment:
    env = Environment()

    def looper():
        timeout = env.timeout
        for _ in range(steps):
            yield timeout(1.0)

    for _ in range(procs):
        env.process(looper())
    env.run()
    return env


@pytest.mark.skipif(_TRACED, reason="tracing defeats refcount recycling")
def test_steady_state_allocates_no_per_step_garbage():
    # Warm-up fills the pools and settles interpreter-level caches.
    _tick_run(8, 50)
    gc.collect()
    env = Environment()

    def looper(steps):
        timeout = env.timeout
        for _ in range(steps):
            yield timeout(1.0)

    for _ in range(8):
        env.process(looper(20))
    env.run()          # fill this environment's pools
    gc.collect()
    baseline = len(gc.get_objects())

    for _ in range(8):
        env.process(looper(500))
    env.run()          # 4000 steps through the warm pools
    gc.collect()
    grown = len(gc.get_objects()) - baseline

    # 4000 steps must not leave thousands of objects behind; allow a
    # small constant slack for interpreter-internal caches.
    assert grown < 64, f"steady state leaked {grown} objects"


def test_pools_recycle_and_are_bounded():
    env = _tick_run(16, 100)
    stats = env.stats
    assert 1 <= stats["pooled_timeouts"] <= 512
    assert stats["pooled_hooks"] <= 512
    assert stats["events_processed"] == 16 * 102


@pytest.mark.skipif(_TRACED, reason="timing under tracing is meaningless")
def test_microbench_runs_and_reports_rate():
    env = _tick_run(50, 200)
    stats = env.stats
    assert stats["events_per_sec"] > 0
    assert stats["busy_seconds"] > 0
    assert stats["peak_queue_depth"] >= 50
