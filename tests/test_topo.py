"""Tests for the declarative topology layer (repro.topo).

Covers the descriptor schema (round-trip + error paths), the generator
zoo (property sweep: every generated shape routes fully), the
deterministic compiler, the committed shapes (pinned to the calls that
produced them), name resolution, and the topology-parameterized
experiment/sweep integration.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.experiments import ExperimentError, run_summary
from repro.experiments.sweep import SweepSpec, run_sweep
from repro.infra import ClusterSpec, build_cluster
from repro.infra.cluster import cluster_descriptor
from repro.sim import Environment
from repro.topo import (
    DescriptorError,
    EndpointSpec,
    LinkClassSpec,
    PodSpec,
    SwitchLinkSpec,
    SwitchSpec,
    TopologyDescriptor,
    UnknownTopologyError,
    build_generated,
    compile_topology,
    ecmp_counts,
    fat_tree,
    load_shape,
    resolve_topology,
    shape_names,
    verify_reachability,
)
from repro.pcie import Topology


def _minimal(**overrides) -> TopologyDescriptor:
    base = dict(
        name="mini",
        pods=(PodSpec(name="pod0", domain=0,
                      switches=(SwitchSpec(name="sw0"),),
                      endpoints=(
                          EndpointSpec(name="h0", switch="sw0",
                                       role="upstream"),
                          EndpointSpec(name="d0", switch="sw0"),
                      )),))
    base.update(overrides)
    return TopologyDescriptor(**base)


class TestDescriptorSchema:
    def test_round_trip_is_lossless(self):
        for descriptor in (
                _minimal().validate(),
                build_generated("star", hosts=3, device_lanes=8),
                build_generated("chain", switches=4),
                fat_tree(pods=3, spines=2, interpod_credits=8),
                build_generated("dragonfly", groups=3, routers=3)):
            raw = json.loads(descriptor.to_json())
            again = TopologyDescriptor.from_dict(raw)
            assert again == descriptor
            assert again.to_json() == descriptor.to_json()

    def test_duplicate_pod_name_rejected(self):
        pod = PodSpec(name="pod0", domain=0,
                      switches=(SwitchSpec(name="a"),))
        other = PodSpec(name="pod0", domain=1,
                        switches=(SwitchSpec(name="b"),))
        with pytest.raises(DescriptorError, match="duplicate pod name"):
            TopologyDescriptor(name="x", pods=(pod, other)).validate()

    def test_endpoint_on_foreign_switch_rejected(self):
        descriptor = _minimal(pods=(
            PodSpec(name="pod0", domain=0,
                    switches=(SwitchSpec(name="sw0"),),
                    endpoints=(EndpointSpec(name="h0",
                                            switch="elsewhere"),)),))
        with pytest.raises(DescriptorError,
                           match="not in pod 'pod0'"):
            descriptor.validate()

    def test_intra_pod_link_may_not_leave_the_pod(self):
        descriptor = TopologyDescriptor(
            name="x",
            pods=(PodSpec(name="pod0", domain=0,
                          switches=(SwitchSpec(name="a"),),
                          links=(SwitchLinkSpec(a="a", b="b"),)),
                  PodSpec(name="pod1", domain=1,
                          switches=(SwitchSpec(name="b"),))))
        with pytest.raises(DescriptorError,
                           match="intra-pod links may only join"):
            descriptor.validate()

    def test_interpod_link_within_one_pod_rejected(self):
        descriptor = TopologyDescriptor(
            name="x",
            pods=(PodSpec(name="pod0", domain=0,
                          switches=(SwitchSpec(name="a"),
                                    SwitchSpec(name="b"))),),
            interpod=(SwitchLinkSpec(a="a", b="b"),))
        with pytest.raises(DescriptorError,
                           match="belong in that pod's 'links'"):
            descriptor.validate()

    def test_unknown_link_class_rejected_with_known_list(self):
        descriptor = _minimal(default_link_class="nope",
                              link_classes={"fast": LinkClassSpec()})
        with pytest.raises(DescriptorError,
                           match=r"unknown link class 'nope'.*fast"):
            descriptor.validate()

    def test_from_dict_error_paths_carry_json_paths(self):
        with pytest.raises(DescriptorError, match=r"pods\[0\]\.switches"):
            TopologyDescriptor.from_dict(
                {"name": "x", "pods": [{"name": "p", "switches": []}]})
        with pytest.raises(DescriptorError,
                           match=r"endpoints\[0\]\.role"):
            TopologyDescriptor.from_dict(
                {"name": "x",
                 "pods": [{"name": "p",
                           "switches": [{"name": "s"}],
                           "endpoints": [{"name": "e", "switch": "s",
                                          "role": "sideways"}]}]})
        with pytest.raises(DescriptorError, match="unknown key"):
            TopologyDescriptor.from_dict(
                {"name": "x", "frobnicate": 1,
                 "pods": [{"name": "p", "switches": [{"name": "s"}]}]})
        with pytest.raises(DescriptorError, match="unsupported schema"):
            TopologyDescriptor.from_dict(
                {"schema": 99, "name": "x",
                 "pods": [{"name": "p", "switches": [{"name": "s"}]}]})

    def test_endpoints_by_role_rejects_bad_role(self):
        with pytest.raises(DescriptorError, match="unknown endpoint role"):
            _minimal().endpoints_by_role("sideways")


#: One entry per generator family, including non-default params — the
#: reachability property must hold across the whole zoo.
PROPERTY_SHAPES = [
    "star",
    "star:hosts=3,devices=1,device_lanes=4",
    "chain:switches=4,hosts=2,devices=2",
    "fat_tree",
    "fat_tree:pods=3,leaves=2,spines=2",
    "fat_tree:pods=2,leaves=3,spines=3,hosts_per_leaf=2",
    "dragonfly",
    "dragonfly:groups=4,routers=3",
]


class TestGeneratorProperties:
    @pytest.mark.parametrize("spec", PROPERTY_SHAPES)
    def test_every_generated_shape_fully_routes(self, spec):
        descriptor = resolve_topology(spec)
        fabric = compile_topology(descriptor, Environment())
        checks = verify_reachability(fabric.topology)
        endpoints = len(descriptor.endpoint_names())
        assert checks["pairs"] == endpoints * (endpoints - 1)

    @pytest.mark.parametrize("spines", [1, 2, 3])
    def test_fat_tree_cross_leaf_ecmp_width_equals_spines(self, spines):
        descriptor = fat_tree(pods=2, leaves=2, spines=spines)
        fabric = compile_topology(descriptor, Environment())
        counts = ecmp_counts(fabric.topology)
        # Same pod, different leaf: every spine is an equal-cost hop.
        assert counts[("pod0.leaf0", "pod0.d1.0")] == spines
        # Cross-pod traffic collapses onto one HBR prefix route.
        assert counts[("pod0.leaf0", "pod1.d0.0")] == 1
        # Local delivery is the single edge port.
        assert counts[("pod0.leaf0", "pod0.d0.0")] == 1

    def test_generators_are_pure(self):
        assert fat_tree(pods=3) == fat_tree(pods=3)
        assert build_generated("dragonfly") == build_generated("dragonfly")

    def test_compilation_is_deterministic(self):
        descriptor = fat_tree(pods=2, spines=2)
        one = compile_topology(descriptor, Environment())
        two = compile_topology(descriptor, Environment())
        assert one.describe() == two.describe()
        assert ecmp_counts(one.topology) == ecmp_counts(two.topology)
        assert one.routes_installed == two.routes_installed

    def test_generator_rejects_unknown_and_bad_params(self):
        with pytest.raises(DescriptorError, match="no parameter"):
            build_generated("star", wings=3)
        with pytest.raises(DescriptorError, match="must be >= 1"):
            build_generated("chain", switches=0)


class TestCommittedShapes:
    def test_the_three_shapes_are_committed(self):
        assert shape_names() == ["interleave", "t2_star",
                                 "xswitch_fat_tree_2pod"]

    def test_every_committed_shape_compiles_and_routes(self):
        for name in shape_names():
            fabric = compile_topology(load_shape(name), Environment())
            verify_reachability(fabric.topology)

    def test_xswitch_shape_pins_its_generator_call(self):
        expected = dataclasses.replace(
            fat_tree(interpod_credits=8, device_lanes=4,
                     device_credits=4),
            name="xswitch_fat_tree_2pod",
            description=load_shape("xswitch_fat_tree_2pod").description)
        assert load_shape("xswitch_fat_tree_2pod") == expected

    def test_t2_star_shape_pins_the_cluster_derivation(self):
        expected = dataclasses.replace(
            cluster_descriptor(ClusterSpec(hosts=1), name="t2_star"),
            description=load_shape("t2_star").description)
        assert load_shape("t2_star") == expected


class TestResolve:
    def test_unknown_name_lists_every_choice(self):
        with pytest.raises(UnknownTopologyError) as err:
            resolve_topology("nope")
        message = str(err.value)
        assert "interleave" in message
        assert "fat_tree" in message

    def test_generator_call_parses_typed_args(self):
        descriptor = resolve_topology("fat_tree:pods=3,spines=2")
        assert descriptor.name == "fat_tree_p3_l2_s2"

    def test_generator_call_rejects_bad_args(self):
        with pytest.raises(DescriptorError, match="no parameter"):
            resolve_topology("fat_tree:wings=3")
        with pytest.raises(DescriptorError, match="cannot parse"):
            resolve_topology("fat_tree:pods=two")
        with pytest.raises(DescriptorError, match="name=value"):
            resolve_topology("fat_tree:pods")

    def test_bare_generator_name_uses_defaults(self):
        assert resolve_topology("star") == build_generated("star")

    def test_committed_shape_resolves_by_stem(self):
        assert resolve_topology("interleave").name == "interleave"


class TestTopologyRegistry:
    def test_duplicate_names_rejected_across_kinds(self):
        topology = Topology(Environment())
        topology.add_switch("node")
        with pytest.raises(ValueError,
                           match="already registered as a switch"):
            topology.add_endpoint("node")
        topology.add_endpoint("edge")
        with pytest.raises(ValueError,
                           match="already registered as a endpoint"):
            topology.add_switch("edge")

    def test_unknown_names_list_registered_nodes(self):
        topology = Topology(Environment())
        topology.add_switch("sw0")
        topology.add_endpoint("e0")
        with pytest.raises(ValueError,
                           match="unknown switch 'swX'.*sw0"):
            topology.connect_endpoint("swX", "e0")
        with pytest.raises(ValueError,
                           match="unknown endpoint 'eX'.*e0"):
            topology.connect_endpoint("sw0", "eX")


class TestClusterIntegration:
    def test_cluster_spec_accepts_explicit_descriptor(self):
        env = Environment()
        spec = ClusterSpec(hosts=1)
        cluster = build_cluster(
            env, dataclasses.replace(
                spec, descriptor=cluster_descriptor(spec)))
        assert sorted(cluster.hosts) == ["host0"]
        assert sorted(cluster.fams) == ["fam0"]

    def test_descriptor_missing_required_endpoints_is_reported(self):
        descriptor = build_generated("star", hosts=1, devices=1)
        with pytest.raises(ValueError,
                           match=r"no endpoint\(s\) host0, fam0"):
            build_cluster(Environment(),
                          ClusterSpec(hosts=1, descriptor=descriptor))


class TestExperimentIntegration:
    def test_unknown_topology_param_is_an_experiment_error(self):
        with pytest.raises(ExperimentError) as err:
            run_summary("xswitch_starvation", topology="nope")
        assert "xswitch_fat_tree_2pod" in str(err.value)
        assert "fat_tree" in str(err.value)

    def test_too_small_topology_is_reported(self):
        with pytest.raises(ExperimentError, match="at least 2"):
            run_summary("xswitch_starvation",
                        topology="star:hosts=1,devices=1",
                        victim_reads=1, flood_writes=1)

    def test_topology_axis_sweep_is_worker_count_invariant(self, tmp_path):
        sweep = SweepSpec.from_dict(
            {"experiment": "xswitch_starvation",
             "sweep": {"topology": ["xswitch_fat_tree_2pod",
                                    "fat_tree:pods=2,leaves=2"]},
             "params": {"victim_reads": 4, "flood_writes": 24}})
        run_sweep(sweep, str(tmp_path / "serial"), workers=1)
        run_sweep(sweep, str(tmp_path / "parallel"), workers=2)
        serial = (tmp_path / "serial" / "sweep.json").read_bytes()
        parallel = (tmp_path / "parallel" / "sweep.json").read_bytes()
        assert serial == parallel
        report = json.loads(serial)
        topologies = [p["outputs"]["summary"]["topology"]
                      for p in report["points"]]
        assert topologies == ["xswitch_fat_tree_2pod",
                              "fat_tree_p2_l2_s1"]
