"""Tests for the runtime sanitizers (``Environment(sanitize=True)``)."""

import pytest

from repro.analysis.runners import SANITIZED_EXPERIMENTS, run_sanitized
from repro.analysis.sanitizers import RuntimeSanitizer, SanitizerError
from repro.pcie.credits import CreditDomain
from repro.sim import Environment, Event, Store


def drain(env):
    env.run()
    env.sanitizer.on_drain()
    return env.sanitizer


class TestWiring:
    def test_off_by_default(self):
        env = Environment()
        assert env.sanitize is False
        assert env.sanitizer is None

    def test_opt_in_attaches_a_sanitizer(self):
        env = Environment(sanitize=True)
        assert env.sanitize is True
        assert isinstance(env.sanitizer, RuntimeSanitizer)
        assert env.sanitizer.clean

    def test_assert_clean_raises_on_findings(self):
        env = Environment(sanitize=True)
        env.sanitizer.note("credit-leak", "synthetic")
        with pytest.raises(SanitizerError):
            env.sanitizer.assert_clean()

    def test_findings_dedupe_on_kind_and_message(self):
        env = Environment(sanitize=True)
        env.sanitizer.note("credit-leak", "same")
        env.sanitizer.note("credit-leak", "same")
        assert len(env.sanitizer.findings) == 1

    def test_json_shape(self):
        env = Environment(sanitize=True)
        env.sanitizer.note("write-race", "synthetic")
        payload = env.sanitizer.to_json()
        assert payload["schema"] == 1
        assert payload["tool"] == "fcc-sanitize"
        assert payload["count"] == 1
        assert set(payload["findings"][0]) == {"kind", "time", "message"}


class TestCreditConservation:
    def make_domain(self, env, budget=8):
        domain = CreditDomain(env, budget=budget, name="dom")
        domain.register("a")
        domain.register("b")
        return domain

    def run_traffic(self, env, domain, flow, n=5):
        def gen():
            for _ in range(n):
                yield domain.acquire(flow)
                yield env.timeout(10.0)
                domain.release(flow)
        env.process(gen(), name=f"traffic-{flow}")
        env.run()

    def test_clean_traffic_conserves(self):
        env = Environment(sanitize=True)
        domain = self.make_domain(env)
        self.run_traffic(env, domain, "a")
        domain.rebalance_now()
        assert domain.conservation_problems() == []
        assert env.sanitizer.clean

    def test_injected_leak_is_caught_at_rebalance(self):
        env = Environment(sanitize=True)
        domain = self.make_domain(env)
        self.run_traffic(env, domain, "a")
        domain._pools["a"].get(1)          # steal a credit behind its back
        domain.rebalance_now()
        kinds = {f.kind for f in env.sanitizer.findings}
        assert kinds == {"credit-leak"}
        assert any("leaked" in f.message
                   for f in env.sanitizer.findings)

    def test_injected_leak_is_caught_at_drain(self):
        env = Environment(sanitize=True)
        domain = self.make_domain(env)
        self.run_traffic(env, domain, "b")
        domain._pools["b"].get(2)
        env.sanitizer.on_drain()
        assert any(f.kind == "credit-leak" and "'b'" in f.message
                   for f in env.sanitizer.findings)

    def test_double_release_is_negative(self):
        env = Environment(sanitize=True)
        domain = self.make_domain(env)

        def gen():
            yield domain.acquire("a")
            yield env.timeout(5.0)
            domain.release("a")
            domain.release("a")            # released but never acquired
        env.process(gen(), name="doubler")
        env.run()
        assert any(f.kind == "credit-negative"
                   for f in env.sanitizer.findings)

    def test_sanitize_off_does_no_accounting(self):
        env = Environment()
        domain = self.make_domain(env)
        self.run_traffic(env, domain, "a")
        domain._pools["a"].get(1)
        domain.rebalance_now()
        assert domain.conservation_problems() == []


class TestEventLifecycle:
    def test_stale_event_reported_at_drain(self):
        env = Environment(sanitize=True)
        orphan = Event(env)
        orphan.callbacks.append(lambda e: None)   # waited on, never fired
        san = drain(env)
        assert any(f.kind == "stale-event" for f in san.findings)

    def test_triggered_events_are_not_stale(self):
        env = Environment(sanitize=True)
        done = Event(env)

        def gen():
            yield env.timeout(1.0)
            done.succeed()
        env.process(gen(), name="ok")

        def waiter():
            yield done
        env.process(waiter(), name="waiter")
        assert drain(env).clean

    def test_dead_event_callback_reported(self):
        env = Environment(sanitize=True)
        store = Store(env)
        put = store.put("x")
        env.run()
        assert put.processed
        put.callbacks.append(lambda e: None)      # can never fire
        assert any(f.kind == "dead-event-callback"
                   for f in env.sanitizer.findings)


class TestDeadlockReport:
    def test_blocked_process_named_with_its_resource(self):
        env = Environment(sanitize=True)
        store = Store(env)

        def stuck():
            yield store.get()
        env.process(stuck(), name="stuck")
        san = drain(env)
        deadlocks = [f for f in san.findings if f.kind == "deadlock"]
        assert len(deadlocks) == 1
        assert "'stuck'" in deadlocks[0].message
        assert "StoreGet" in deadlocks[0].message

    def test_daemons_are_exempt(self):
        env = Environment(sanitize=True)
        store = Store(env)

        def service():
            while True:
                yield store.get()
        env.process(service(), name="svc", daemon=True)

        def client():
            yield env.timeout(5.0)
            yield store.put("x")
        env.process(client(), name="client")
        assert drain(env).clean

    def test_on_drain_is_idempotent(self):
        env = Environment(sanitize=True)
        store = Store(env)

        def stuck():
            yield store.get()
        env.process(stuck(), name="stuck")
        san = drain(env)
        san.on_drain()
        assert len([f for f in san.findings
                    if f.kind == "deadlock"]) == 1


class TestWriteRace:
    def test_same_time_writers_flagged(self):
        env = Environment(sanitize=True)
        store = Store(env)

        def writer(tag):
            yield env.timeout(1.0)
            yield store.put(tag)
        env.process(writer("a"), name="w-a")
        env.process(writer("b"), name="w-b")
        env.run()
        races = [f for f in env.sanitizer.findings
                 if f.kind == "write-race"]
        assert races and "w-a" in races[0].message \
            and "w-b" in races[0].message

    def test_different_times_are_fine(self):
        env = Environment(sanitize=True)
        store = Store(env)

        def writer(tag, when):
            yield env.timeout(when)
            yield store.put(tag)
        env.process(writer("a", 1.0), name="w-a")
        env.process(writer("b", 2.0), name="w-b")
        env.run()
        assert env.sanitizer.clean


class TestDeterminismAndRunners:
    def _trace(self, sanitize):
        env = Environment(sanitize=sanitize)
        store = Store(env)
        log = []

        def producer():
            for i in range(50):
                yield env.timeout(3.0)
                yield store.put(i)

        def consumer():
            while True:
                item = yield store.get()
                log.append((env.now, item))
                yield env.timeout(1.0)
        env.process(producer(), name="prod")
        env.process(consumer(), name="cons", daemon=True)
        env.run(until=500.0)
        return log, env.stats["events_processed"]

    def test_sanitize_does_not_change_scheduling(self):
        plain, plain_events = self._trace(False)
        checked, checked_events = self._trace(True)
        assert plain == checked
        assert plain_events == checked_events

    @pytest.mark.parametrize("name", sorted(SANITIZED_EXPERIMENTS))
    def test_canonical_runners_are_clean(self, name):
        sanitizer, summary = run_sanitized(name)
        assert sanitizer.clean, sanitizer.report()
        assert summary["experiment"] == name
        assert summary["events"] > 0

    def test_unknown_runner_raises(self):
        with pytest.raises(ValueError):
            run_sanitized("nope")
