"""Cross-module end-to-end scenarios.

These tests exercise realistic combinations — lossy links under real
traffic, tracing through the whole stack, the full UniFabric facade
with memkind + futures + tasks together, and a multi-host contention
scenario — the kind of integration coverage unit tests cannot give.
"""

import pytest

from repro import params
from repro.core import (
    MEMKIND_FABRIC,
    MEMKIND_LOCAL,
    FutureExecutor,
    MemkindAllocator,
    Task,
    UniFabric,
    gather,
)
from repro.fabric import Channel, Packet, PacketKind
from repro.infra import ClusterSpec, FamSpec, build_cluster
from repro.pcie import FabricManager, PortRole, Topology
from repro.sim import Environment, SimRng, Tracer


def run(env, gen, horizon=100_000_000_000):
    proc = env.process(gen)
    env.run(until=env.now + horizon, until_event=proc)
    assert proc.triggered, "process did not finish"
    if not proc.ok:
        raise proc.value
    return proc.value


class TestLossyLinks:
    def test_traffic_survives_link_errors(self):
        """Retry/ack reliability keeps the fabric correct when lossy."""
        env = Environment()
        topo = Topology(env)
        topo.add_switch("sw0")
        topo.add_endpoint("host")
        topo.add_endpoint("dev")
        # Wire manually with error-injecting links.
        from repro.fabric import LinkLayer, TransactionPort
        lossy = dict(error_rate=0.05, rng=SimRng(13))
        up = LinkLayer(env, name="h->s", **lossy)
        down = LinkLayer(env, name="s->h", **lossy)
        topo.switches["sw0"].attach(in_link=up, out_link=down,
                                    role=PortRole.UPSTREAM, peer="host")
        host_port = TransactionPort(env, tx_link=up, rx_link=down,
                                    port_id=0, name="host")
        topo.endpoints["host"].port = host_port
        topo._adjacency["sw0"].append(("host", 0))
        topo._adjacency["host"].append(("sw0", -1))
        dev_port = topo.connect_endpoint("sw0", "dev")
        FabricManager(topo).configure()

        def echo(request):
            yield env.timeout(10.0)
            return request.make_response()

        dev_port.serve(echo)
        completed = []

        def client():
            for i in range(50):
                packet = Packet(kind=PacketKind.MEM_RD,
                                channel=Channel.CXL_MEM, src=0,
                                dst=topo.endpoints["dev"].global_id,
                                addr=i * 64, nbytes=64)
                response = yield from host_port.request(packet)
                completed.append(response.addr)

        run(env, client())
        assert sorted(completed) == [i * 64 for i in range(50)]
        assert up.retransmissions > 0


class TestTracingThroughTheStack:
    def test_tracer_sees_all_layers(self):
        env = Environment()
        tracer = Tracer()
        cluster = build_cluster(env, ClusterSpec(hosts=1),
                                tracer=tracer)
        host = cluster.host(0)

        def go():
            yield from host.mem.access(host.remote_base("fam0"), False)

        run(env, go())
        kinds = {record.kind for record in tracer.records}
        assert "phys.tx" in kinds
        assert "link.rx" in kinds
        assert "switch.fwd" in kinds
        assert "port.tx" in kinds and "port.rx" in kinds

    def test_trace_reconstructs_request_path(self):
        env = Environment()
        tracer = Tracer()
        cluster = build_cluster(env, ClusterSpec(hosts=1),
                                tracer=tracer)
        host = cluster.host(0)

        def go():
            yield from host.mem.access(host.remote_base("fam0"), False)

        run(env, go())
        # The request leaves the host port before the switch forwards
        # it, and the switch forwards it before the device receives it.
        tx_times = [r.time for r in tracer.filter("port.tx")
                    if r.port == "host0"]
        fwd_times = [r.time for r in tracer.filter("switch.fwd")]
        rx_times = [r.time for r in tracer.filter("port.rx")
                    if r.port == "fam0"]
        assert tx_times and fwd_times and rx_times
        assert min(tx_times) < min(fwd_times) < max(rx_times)


class TestFullStackScenario:
    def test_unifabric_memkind_futures_tasks_together(self):
        env = Environment()
        cluster = build_cluster(env, ClusterSpec(hosts=2,
                                                 control_lane=True))
        uni = UniFabric(env, cluster, with_arbiter=True)
        allocator = MemkindAllocator(uni.heap("host0"))
        executor = FutureExecutor(env, "host0")
        runtime = uni.task_runtime("host0")

        buffers = [allocator.kind_malloc(MEMKIND_LOCAL, 4096),
                   allocator.kind_malloc(MEMKIND_FABRIC, 4096)]

        def stage(buffer):
            def work():
                yield from buffer.write(0, 1024)
                task = (Task(f"t{buffer.oid}")
                        .read(0x1000).compute(100.0).write(0x2000))
                result = yield from runtime.execute(task)
                return result.useful_ops

            return executor.submit(work())

        futures = [stage(b) for b in buffers]
        joined = gather(env, futures)
        env.run(until=10_000_000_000, until_event=joined.wait())
        assert joined.value == [3, 3]
        assert runtime.tasks_completed == 2
        stats = allocator.stats()
        assert stats["memkind_local"] == 4096
        assert stats["memkind_fabric"] == 4096

    def test_two_hosts_share_one_fam_without_interference_bugs(self):
        env = Environment()
        cluster = build_cluster(env, ClusterSpec(hosts=4))
        done = []

        def client(index):
            host = cluster.hosts[f"host{index}"]
            base = host.remote_base("fam0")
            for i in range(20):
                addr = base + (index * (1 << 20)) + i * 4096
                yield from host.mem.access(addr, i % 2 == 0)
            done.append(index)

        procs = [env.process(client(i)) for i in range(4)]

        def wait():
            yield env.all_of(procs)

        run(env, wait())
        assert sorted(done) == [0, 1, 2, 3]
        # All traffic flowed through one switch without drops.
        switch = cluster.topology.switches["sw0"]
        assert switch.flits_forwarded > 0


class TestBifurcatedTopology:
    def test_narrow_links_still_correct_just_slower(self):
        def latency(lanes):
            env = Environment()
            cluster = build_cluster(env, ClusterSpec(
                hosts=1, link_params=params.LinkParams(lanes=lanes)))
            host = cluster.host(0)

            def go():
                start = env.now
                yield from host.mem.access(
                    host.remote_base("fam0") + 0x1000, False, 4096)
                return env.now - start

            return run(env, go())

        assert latency(4) > latency(16)


class TestScaleOutRack:
    """The scaleout_rack example topology, pinned as a test."""

    def _build(self):
        from repro.infra import HostServer
        from repro.infra.chassis import FamChassis
        from repro.mem import CpulessExpander
        env = Environment()
        topo = Topology(env)
        for name, domain in (("leaf0", 0), ("spineA", 0), ("spineB", 0),
                             ("leaf1", 0), ("gw1", 1)):
            switch = topo.add_switch(name, domain=domain)
            switch.adaptive_routing = True
        topo.connect_switches("leaf0", "spineA")
        topo.connect_switches("leaf0", "spineB")
        topo.connect_switches("spineA", "leaf1")
        topo.connect_switches("spineB", "leaf1")
        topo.connect_switches("leaf1", "gw1")
        topo.add_endpoint("host0", domain=0)
        host_port = topo.connect_endpoint("leaf0", "host0",
                                          role=PortRole.UPSTREAM)
        fams = {}
        for name, leaf, domain in (("famA", "leaf1", 0),
                                   ("famFar", "gw1", 1)):
            topo.add_endpoint(name, domain=domain)
            port = topo.connect_endpoint(leaf, name)
            fams[name] = FamChassis(
                env, port,
                [CpulessExpander(
                    env, 1 << 26, name=f"{name}.mod0",
                    read_extra_ns=params.FAM_MEDIA_READ_NS,
                    write_extra_ns=params.FAM_MEDIA_WRITE_NS)],
                name=name)
        FabricManager(topo).configure()
        host = HostServer(env, "host0", host_port,
                          local_bytes=1 << 30)
        for name, fam in fams.items():
            host.map_remote(name, topo.endpoints[name].global_id,
                            fam.capacity_bytes)
        return env, topo, host

    def test_cross_domain_costs_one_more_switch(self):
        env, topo, host = self._build()

        def go():
            start = env.now
            yield from host.mem.access(host.remote_base("famA")
                                       + 0x1000, False)
            same = env.now - start
            start = env.now
            yield from host.mem.access(host.remote_base("famFar")
                                       + 0x1000, False)
            far = env.now - start
            return same, far

        same, far = run(env, go())
        # famFar sits one switch (gw1) deeper: ~2 crossings more RTT.
        assert far > same + params.SWITCH_PORT_LATENCY_NS
        assert far < same + 6 * params.SWITCH_PORT_LATENCY_NS

    def test_adaptive_spines_share_bulk_traffic(self):
        env, topo, host = self._build()

        def worker(index, count):
            for i in range(count):
                offset = (index * count + i) * 32768
                yield from host.mem.access(
                    host.remote_base("famA") + 0x100000 + offset,
                    False, 16 * 1024)

        procs = [env.process(worker(w, 6)) for w in range(6)]

        def wait():
            yield env.all_of(procs)

        run(env, wait())
        spine_a = topo.switches["spineA"].flits_forwarded
        spine_b = topo.switches["spineB"].flits_forwarded
        assert spine_a > 0 and spine_b > 0
        assert min(spine_a, spine_b) > max(spine_a, spine_b) / 3
