"""Golden-output pins for the migrated benchmark wrappers.

Every ``benchmarks/bench_*.py`` was rewritten as a thin wrapper over
the experiment registry (:mod:`repro.experiments`).  The files in
``tests/golden/`` are the tables the pre-refactor scripts printed;
these tests pin the wrappers to them byte for byte, so a registry or
renderer change that alters any published number fails loudly.

Regenerate a golden after an *intentional* change with::

    PYTHONPATH=src python benchmarks/bench_<name>.py \
        > tests/golden/bench_<name>.txt
"""

from __future__ import annotations

import contextlib
import importlib
import io
import sys
from pathlib import Path

import pytest

_REPO = Path(__file__).resolve().parent.parent
_GOLDEN = Path(__file__).resolve().parent / "golden"
_NAMES = sorted(p.stem for p in _GOLDEN.glob("bench_*.txt"))


def test_every_bench_has_a_golden():
    benches = sorted(p.stem for p in (_REPO / "benchmarks").glob(
        "bench_*.py"))
    assert benches == _NAMES


@pytest.mark.parametrize("name", _NAMES)
def test_bench_main_matches_golden(name):
    # Import by module name: when the pytest-benchmark collection has
    # already run this module's tests, its memoized collect() cache is
    # warm and main() is nearly free.
    if str(_REPO / "benchmarks") not in sys.path:
        sys.path.insert(0, str(_REPO / "benchmarks"))
    module = importlib.import_module(name)
    captured = io.StringIO()
    with contextlib.redirect_stdout(captured):
        module.main()
    expected = (_GOLDEN / f"{name}.txt").read_text()
    assert captured.getvalue() == expected
