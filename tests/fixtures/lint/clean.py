"""Clean fixture: none of the FCC rules fire here."""

from typing import List, Optional

CONSTANT_TABLE = {"a": 1}      # constant by convention: not flagged

__all__ = ["sample", "drain"]


def sample(rng, n: int) -> List[float]:
    return [rng.random() for _ in range(n)]


def drain(pending, out: Optional[List[str]] = None) -> List[str]:
    out = [] if out is None else out
    for name in sorted(set(pending)):
        out.append(name)
    return out


def proc(env):
    if env is None:
        return None            # bare early exit: allowed
    yield env.timeout(1.0)
    return 42
