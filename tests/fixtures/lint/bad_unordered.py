"""FCC005 fixture: iteration over an unordered set."""

__all__ = ["drain"]


def drain(pending):
    out = []
    for name in set(pending):      # FCC005: set iteration order
        out.append(name)
    return out
