"""FCC002 fixture: wall-clock reads outside benchmarks/."""

import time
from datetime import datetime

__all__ = ["stamp"]


def stamp():
    started = time.perf_counter()         # FCC002
    return started, datetime.now()        # FCC002
