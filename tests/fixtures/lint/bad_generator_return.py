"""FCC003 fixture: a process generator that returns before yielding.

``env.process(broken())`` would finish instantly without ever blocking
— almost always a missing ``yield``.
"""

__all__ = ["broken"]


def broken(env):
    return 42                  # FCC003: unconditional return before any yield
    yield env.timeout(1.0)
