"""FCC004 fixture: mutable default argument and module-level state."""

registry = {}                  # FCC004: module-level mutable state

__all__ = ["append_to"]


def append_to(item, bucket=[]):    # FCC004: mutable default
    bucket.append(item)
    return bucket
