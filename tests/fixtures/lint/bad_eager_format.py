"""FCC006 fixture: strings formatted per-event in telemetry calls."""

__all__ = ["emit"]


def emit(env, tracer, counter, histogram, telemetry, span, flow, n):
    tracer.record(env.now, f"link.{flow}.retry")              # FCC006
    tracer.record(env.now, "retry %s" % flow)                 # FCC006
    with span(env, "op.{}".format(flow)):                     # FCC006
        counter.inc(time=env.now)
    telemetry.instant("stall", detail=f"flow={flow}")         # FCC006
    histogram.observe(n, time=env.now)
    allowed = f"ok.{flow}"        # formatting outside a sink is fine
    tracer.record(env.now, allowed)
    tracer.record(env.now, f"constant-free")   # no placeholder: clean
    return allowed
