"""Fixture: span context managers created but never entered (FCC007)."""


def timed_phase(env, telemetry):
    span(env, "phase.compute", track="app")
    leaked = telemetry.span("phase.flush", track="app")
    return leaked


def proper_usage(env, telemetry, stack):
    with span(env, "phase.ok", track="app"):
        pass
    deferred = telemetry.span("phase.deferred", track="app")
    with deferred:
        pass
    stack.enter_context(telemetry.span("phase.stacked", track="app"))
