"""FCC001 fixture: unseeded global randomness."""

import random                     # FCC001: the global stream
import numpy.random               # FCC001: numpy module state
from random import shuffle       # FCC001: from-import

__all__ = ["jitter", "shuffle"]


def jitter():
    return random.random() + numpy.random.rand()
