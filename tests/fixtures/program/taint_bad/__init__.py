"""FCC101 positive fixture: the spawned process itself is clean, but
it calls a helper in another module that reads the wall clock."""
