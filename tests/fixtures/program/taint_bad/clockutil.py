"""A helper that looks innocent in isolation (it is 'just a
function') but reads ambient wall-clock state."""

import time


def jitter():
    return time.perf_counter() % 5.0
