"""The process is spawned here; per-file lint on this module is
clean — only the interprocedural closure sees the taint."""

from .clockutil import jitter


def worker(env):
    delay = jitter()
    yield env.timeout(delay)


def main(env):
    env.process(worker(env))
