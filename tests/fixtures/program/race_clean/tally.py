"""Order-insensitive twin of race_bad: `+=` commutes, and the
read/store pair in ``drain`` straddles a yield (each wake-up observes
a settled value)."""


class Tally:
    def __init__(self, env):
        self.env = env
        self.depth = 0
        self.high_water = 0

    def bump(self):
        while True:
            self.depth += 1
            yield self.env.timeout(10.0)

    def drain(self):
        while True:
            snapshot = self.depth
            yield self.env.timeout(25.0)
            self.high_water = snapshot
            yield self.env.timeout(25.0)


def main(env):
    tally = Tally(env)
    env.process(tally.bump())
    env.process(tally.bump())
    env.process(tally.drain())
