"""FCC102 negative fixture: the same two-spawn shape as race_bad, but
every update is either a commutative counter bump or separated from
its read by a yield."""
