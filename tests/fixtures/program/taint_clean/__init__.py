"""FCC101 negative fixture: same shape as taint_bad, but the helper
derives its value from simulation state, not ambient clocks."""
