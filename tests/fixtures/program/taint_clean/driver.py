"""Same spawn shape as taint_bad/driver.py, no reachable sink."""

from .clockutil import jitter


def worker(env):
    delay = jitter(env)
    yield env.timeout(delay)


def main(env):
    env.process(worker(env))
