"""Deterministic helper: the delay is a pure function of sim time."""


def jitter(env):
    return (env.now % 5.0) + 1.0
