"""FCC103 positive fixture: a scheduler that claims batchable = True
but plans impurely (dequeues and stores state while planning) and
commits the tail instead of the head."""
