"""Every structural rule of the batched-egress protocol broken at
least once, on purpose."""


class GreedyScheduler:
    batchable = True

    def __init__(self, env):
        self.env = env
        self._queues = {"all": []}
        self.planned = 0

    def enqueue(self, flit):
        self._queues["all"].append(flit)

    def peek_ready(self):
        queue = self._queues["all"]
        return queue[0] if queue else None

    def plan_ready_run(self, limit):
        run = []
        while self._queues["all"] and len(run) < limit:
            run.append(self._queues["all"].pop(0))
        self.planned = len(run)
        self.env.timeout(0.0)
        return run

    def commit_head(self):
        return self._queues["all"].pop()
