"""FCC102 positive fixture: an order-sensitive read-modify-write of a
shared attribute in a method spawned twice, with no yield between
acquire and store."""
