"""Two instances of ``bump`` wake at the same timestamp; the final
``self.depth`` depends only on kernel dispatch order (`*` does not
commute with itself applied to the running value)."""


class Tally:
    def __init__(self, env):
        self.env = env
        self.depth = 1

    def bump(self):
        while True:
            depth = self.depth
            self.depth = depth * 2 + 1
            yield self.env.timeout(10.0)


def main(env):
    tally = Tally(env)
    env.process(tally.bump())
    env.process(tally.bump())
