"""The Fifo shape: planning observes state without changing it, and
commit_head retires exactly the entry peek_ready inspected."""


class FifoScheduler:
    batchable = True

    def __init__(self):
        self._queues = {"all": []}

    def enqueue(self, flit):
        self._queues["all"].append(flit)

    def peek_ready(self):
        queue = self._queues["all"]
        return queue[0] if queue else None

    def plan_ready_run(self, limit):
        queue = self._queues["all"]
        count = min(limit, len(queue))
        return [queue[i] for i in range(count)]

    def commit_head(self):
        return self._queues["all"].pop(0)
