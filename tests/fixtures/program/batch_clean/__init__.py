"""FCC103 negative fixture: a conforming batchable scheduler — pure
plan (index-walk only), head-order commit, no kernel events."""
