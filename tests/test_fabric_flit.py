"""Unit tests for packets, flits, tags, fragmentation, reassembly."""

import pytest

from repro import params
from repro.fabric import (
    Channel,
    Packet,
    PacketKind,
    Reassembler,
    TagAllocator,
    fragment,
)


def make_packet(kind=PacketKind.MEM_RD, nbytes=64, **kw):
    return Packet(kind=kind, channel=Channel.CXL_MEM, src=1, dst=2,
                  addr=0x1000, nbytes=nbytes, **kw)


class TestPacket:
    def test_wire_bytes_request_has_no_payload(self):
        assert make_packet(PacketKind.MEM_RD).wire_bytes == 16

    def test_wire_bytes_write_carries_payload(self):
        assert make_packet(PacketKind.MEM_WR, nbytes=64).wire_bytes == 80

    def test_make_response_swaps_endpoints(self):
        req = make_packet(PacketKind.MEM_RD, tag=7)
        rsp = req.make_response()
        assert rsp.kind is PacketKind.MEM_RD_DATA
        assert (rsp.src, rsp.dst) == (req.dst, req.src)
        assert rsp.tag == 7
        assert rsp.nbytes == req.nbytes

    def test_make_response_write_ack_has_no_payload(self):
        rsp = make_packet(PacketKind.MEM_WR).make_response()
        assert rsp.kind is PacketKind.MEM_WR_ACK
        assert rsp.nbytes == 0

    def test_make_response_rejects_non_request(self):
        rsp = make_packet(PacketKind.MEM_RD).make_response()
        with pytest.raises(ValueError):
            rsp.make_response()

    def test_uids_unique(self):
        assert make_packet().uid != make_packet().uid


class TestFragmentation:
    def test_single_cacheline_fits_one_small_flit(self):
        # 16B header + 64B payload = 80B -> 2 x 64B-payload flits
        flits = fragment(make_packet(PacketKind.MEM_WR, nbytes=64))
        assert len(flits) == 2
        assert flits[0].total == 2
        assert flits[-1].is_tail

    def test_read_request_is_single_flit(self):
        flits = fragment(make_packet(PacketKind.MEM_RD))
        assert len(flits) == 1

    def test_large_flit_mode_uses_fewer_flits(self):
        pkt = make_packet(PacketKind.MEM_WR, nbytes=16 * 1024)
        small = fragment(pkt, params.FLIT_BYTES_SMALL)
        large = fragment(pkt, params.FLIT_BYTES_LARGE)
        assert len(large) < len(small)
        assert len(small) == -(-pkt.wire_bytes // 64)

    def test_vc_propagates_to_flits(self):
        flits = fragment(make_packet(PacketKind.MEM_WR, nbytes=256), vc=1)
        assert all(f.vc == 1 for f in flits)


class TestReassembler:
    def test_roundtrip_in_order(self):
        pkt = make_packet(PacketKind.MEM_WR, nbytes=256)
        reasm = Reassembler()
        flits = fragment(pkt)
        for flit in flits[:-1]:
            assert reasm.push(flit) is None
        assert reasm.push(flits[-1]) is pkt
        assert reasm.pending_packets == 0

    def test_interleaved_packets(self):
        a = make_packet(PacketKind.MEM_WR, nbytes=128)
        b = make_packet(PacketKind.MEM_WR, nbytes=128)
        reasm = Reassembler()
        fa, fb = fragment(a), fragment(b)
        order = [fa[0], fb[0], fa[1], fb[1], fa[2], fb[2]]
        done = [p for p in (reasm.push(f) for f in order) if p is not None]
        assert done == [a, b]

    def test_duplicate_flit_rejected(self):
        pkt = make_packet(PacketKind.MEM_RD)
        reasm = Reassembler()
        flit = fragment(pkt)[0]
        reasm.push(flit)
        with pytest.raises(ValueError):
            reasm.push(flit)


class TestTagAllocator:
    def test_allocate_free_cycle(self):
        tags = TagAllocator(4)
        got = [tags.allocate() for _ in range(4)]
        assert len(set(got)) == 4
        assert tags.available == 0
        tags.free(got[0])
        assert tags.available == 1
        assert tags.in_use == 3

    def test_exhaustion_raises(self):
        tags = TagAllocator(1)
        tags.allocate()
        with pytest.raises(RuntimeError):
            tags.allocate()

    def test_double_free_rejected(self):
        tags = TagAllocator(2)
        tag = tags.allocate()
        tags.free(tag)
        with pytest.raises(ValueError):
            tags.free(tag)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            TagAllocator(0)


class TestFlitCount:
    @pytest.mark.parametrize("payload,expected", [
        (0, 1), (1, 1), (64, 1), (65, 2), (128, 2), (16 * 1024, 256),
    ])
    def test_small_flit_counts(self, payload, expected):
        assert params.flit_count(payload, params.FLIT_BYTES_SMALL) == expected

    @pytest.mark.parametrize("payload,expected", [
        (64, 1), (192, 1), (193, 2), (16 * 1024, 86),
    ])
    def test_large_flit_counts(self, payload, expected):
        assert params.flit_count(payload, params.FLIT_BYTES_LARGE) == expected
