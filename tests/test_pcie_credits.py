"""Tests for per-flow credit budgeting (CFC pathologies, claims C5-C7)."""

import pytest

from repro.pcie import CreditDomain, RampUpPolicy, ReservationPolicy, StaticEqualPolicy
from repro.sim import Environment


class TestStaticEqualPolicy:
    def test_budget_split_evenly(self):
        env = Environment()
        dom = CreditDomain(env, budget=32)
        dom.register("a")
        dom.register("b")
        assert dom.granted("a") + dom.granted("b") == 32
        assert abs(dom.granted("a") - dom.granted("b")) <= 1

    def test_remainder_distributed(self):
        env = Environment()
        dom = CreditDomain(env, budget=10)
        for name in ("a", "b", "c"):
            dom.register(name)
        grants = [dom.granted(n) for n in ("a", "b", "c")]
        assert sum(grants) == 10
        assert max(grants) - min(grants) <= 1


class TestAcquireRelease:
    def test_acquire_blocks_when_dry(self):
        env = Environment()
        dom = CreditDomain(env, budget=2)
        dom.register("a")
        times = []

        def taker():
            for _ in range(3):
                yield dom.acquire("a")
                times.append(env.now)

        def releaser():
            yield env.timeout(50)
            dom.release("a")

        env.process(taker())
        env.process(releaser())
        env.run(until=1_000)
        assert times == [0, 0, 50]

    def test_release_respects_shrunken_grant(self):
        env = Environment()
        dom = CreditDomain(env, budget=8, policy=StaticEqualPolicy())
        dom.register("a")
        assert dom.granted("a") == 8

        def run():
            for _ in range(4):
                yield dom.acquire("a")
            # Second flow arrives; rebalance halves a's grant.
            dom.register("b")
            assert dom.granted("a") == 4
            # a returns its 4 outstanding credits: pool must not exceed
            # the new grant of 4 (it had 4 idle, drained at rebalance).
            for _ in range(4):
                dom.release("a")
            yield env.timeout(0)

        env.process(run())
        env.run(until=100)
        assert dom.available("a") <= dom.granted("a")


class TestRampUpPolicy:
    def test_hot_flow_monopolizes_budget(self):
        """Claim C5: a consistently busy flow compounds its share."""
        env = Environment()
        dom = CreditDomain(env, budget=64, policy=RampUpPolicy(),
                           rebalance_ns=100.0)
        dom.register("hot")
        dom.register("cold")
        dom.start()

        def hot_traffic():
            while True:
                # Consume whatever is granted, fast.
                yield dom.acquire("hot")
                dom.release("hot")
                yield env.timeout(1.0)

        env.process(hot_traffic())
        env.run(until=2_000)
        assert dom.granted("hot") > 3 * dom.granted("cold")
        assert dom.granted("cold") >= RampUpPolicy.floor

    def test_idle_flow_decays_to_floor(self):
        env = Environment()
        dom = CreditDomain(env, budget=64, policy=RampUpPolicy(),
                           rebalance_ns=100.0)
        dom.register("idle")
        dom.start()
        env.run(until=2_000)
        assert dom.granted("idle") >= RampUpPolicy.floor


class TestReservationPolicy:
    def test_reserved_flow_keeps_guarantee_under_contention(self):
        env = Environment()
        policy = ReservationPolicy()
        dom = CreditDomain(env, budget=64, policy=policy)
        dom.register("latency")
        dom.register("bulk")
        policy.reserve("latency", 16)
        dom.rebalance_now()
        assert dom.granted("latency") == 16
        assert dom.granted("bulk") >= 1
        total = dom.granted("latency") + dom.granted("bulk")
        assert total <= 64

    def test_reclaim_returns_to_equal_share(self):
        env = Environment()
        policy = ReservationPolicy()
        dom = CreditDomain(env, budget=64, policy=policy)
        dom.register("a")
        dom.register("b")
        policy.reserve("a", 48)
        dom.rebalance_now()
        assert dom.granted("a") == 48
        policy.reclaim("a")
        dom.rebalance_now()
        assert dom.granted("a") < 48

    def test_negative_reservation_rejected(self):
        policy = ReservationPolicy()
        with pytest.raises(ValueError):
            policy.reserve("x", -1)


class TestValidation:
    def test_bad_budget(self):
        env = Environment()
        with pytest.raises(ValueError):
            CreditDomain(env, budget=0)

    def test_duplicate_flow(self):
        env = Environment()
        dom = CreditDomain(env, budget=4)
        dom.register("a")
        with pytest.raises(ValueError):
            dom.register("a")
