"""Tests for causal transaction tracing: the flight recorder, the
critical-path analyzer, percentile digests, the `repro why` / `repro
compare` CLI, and the tracing-on/off bit-identity guarantee."""

import json

import pytest

from repro.cli import main
from repro.pcie.credits import CreditDomain
from repro.pcie.switch import FabricSwitch
from repro.sim import Container, Environment, run_proc
from repro.telemetry import (AttributionError, CausalRecorder, TDigest,
                             TimelineSampler, TraceContext, build_report,
                             validate_attribution)
from repro.telemetry.attribution import (SpanRecord, TransactionTrace,
                                         collect_transactions)
from repro.telemetry.causal import (ARBITRATION, CATEGORIES, CREDIT_STALL,
                                    PROCESSING, QUEUEING, SERIALIZATION)
from repro.telemetry.compare import ComparisonError, compare_payloads
from repro.telemetry.scenarios import run_scenario


# --------------------------------------------------------------------------
# recorder
# --------------------------------------------------------------------------

class TestCausalRecorder:
    def test_sample_every_root_by_default(self):
        recorder = CausalRecorder()
        contexts = [recorder.sample_root() for _ in range(5)]
        assert all(ctx is not None for ctx in contexts)
        assert [ctx.trace_id for ctx in contexts] == [1, 2, 3, 4, 5]

    def test_sampling_keeps_one_in_n(self):
        recorder = CausalRecorder(sample=4)
        contexts = [recorder.sample_root() for _ in range(12)]
        kept = [ctx for ctx in contexts if ctx is not None]
        assert len(kept) == 3
        assert contexts[0] is not None          # the first root is kept
        assert recorder.roots_seen == 12

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError, match="sample"):
            CausalRecorder(sample=0)
        with pytest.raises(ValueError, match="capacity"):
            CausalRecorder(capacity=0)

    def test_interval_records_both_edges(self):
        recorder = CausalRecorder()
        ctx = recorder.sample_root()
        recorder.txn_begin(ctx, 0.0, "read", "routeA")
        recorder.interval(ctx, 10.0, 30.0, QUEUEING, "site")
        recorder.txn_end(ctx, 50.0)
        [txn] = collect_transactions(recorder)
        assert (txn.begin, txn.end) == (0.0, 50.0)
        [span] = txn.spans
        assert (span.t0, span.t1, span.category) == (10.0, 30.0, QUEUEING)

    def test_wait_on_satisfied_event_records_nothing(self):
        env = Environment()
        recorder = CausalRecorder()
        ctx = recorder.sample_root()
        pool = Container(env, capacity=4, init=4)
        recorder.wait(ctx, pool.get(1), CREDIT_STALL, "site")
        assert len(recorder) == 0

    def test_wait_on_blocked_event_closes_at_grant_instant(self):
        env = Environment()
        recorder = CausalRecorder()
        ctx = recorder.sample_root()
        pool = Container(env, capacity=4, init=0)

        def taker():
            get = pool.get(1)
            recorder.wait(ctx, get, CREDIT_STALL, "site")
            yield get

        def giver():
            yield env.timeout(25.0)
            yield pool.put(1)

        env.process(taker())
        env.process(giver())
        env.run()
        begin = next(e for e in recorder.events if e[0] == "B")
        end = next(e for e in recorder.events if e[0] == "E")
        assert begin[1] == 0.0
        assert end[1] == 25.0

    def test_bounded_capacity_evicts_oldest(self):
        recorder = CausalRecorder(capacity=8)
        ctx = recorder.sample_root()
        assert not recorder.saturated
        for i in range(20):
            recorder.mark(ctx, float(i), "tick", "site")
        assert len(recorder) == 8
        assert recorder.saturated
        assert recorder.events[0][1] == 12.0    # oldest 12 dropped


# --------------------------------------------------------------------------
# t-digest
# --------------------------------------------------------------------------

class TestTDigest:
    def test_empty_quantile_is_none(self):
        digest = TDigest()
        assert digest.quantile(0.5) is None
        assert digest.to_dict()["p95"] is None
        assert digest.to_dict()["count"] == 0

    def test_single_value(self):
        digest = TDigest()
        digest.add(42.0)
        assert digest.quantile(0.0) == 42.0
        assert digest.quantile(1.0) == 42.0

    def test_quantiles_monotone_and_bounded(self):
        digest = TDigest(max_centroids=32)
        for i in range(1, 1001):
            digest.add(float(i))
        p50, p95, p99 = (digest.quantile(q) for q in (0.5, 0.95, 0.99))
        assert 1.0 <= p50 <= p95 <= p99 <= 1000.0
        assert abs(p50 - 500.0) < 50.0
        assert p95 > 850.0

    def test_deterministic_for_same_stream(self):
        streams = [TDigest(), TDigest()]
        for digest in streams:
            for i in range(500):
                digest.add(float((i * 37) % 101))
        assert streams[0].to_dict() == streams[1].to_dict()

    def test_rejects_bad_input(self):
        digest = TDigest()
        with pytest.raises(ValueError, match="weight"):
            digest.add(1.0, weight=0.0)
        with pytest.raises(ValueError, match="quantile"):
            digest.quantile(1.5)
        with pytest.raises(ValueError, match="max_centroids"):
            TDigest(max_centroids=2)


# --------------------------------------------------------------------------
# critical-path extraction (synthetic transactions)
# --------------------------------------------------------------------------

def _txn(spans, begin=0.0, end=100.0):
    return TransactionTrace(trace_id=1, kind="read", route="r",
                            begin=begin, end=end, spans=spans, marks=[])


class TestCriticalPath:
    def test_uncovered_time_is_processing(self):
        txn = _txn([])
        [segment] = txn.critical_path()
        assert segment["category"] == PROCESSING
        assert segment["site"] == "model"
        assert segment["ns"] == 100.0

    def test_precedence_credit_beats_queueing(self):
        txn = _txn([
            SpanRecord(1, 0, QUEUEING, "q", 0.0, 50.0),
            SpanRecord(2, 0, CREDIT_STALL, "c", 20.0, 40.0),
        ])
        path = txn.critical_path()
        assert [(s["category"], s["t0"], s["t1"]) for s in path] == [
            (QUEUEING, 0.0, 20.0),
            (CREDIT_STALL, 20.0, 40.0),
            (QUEUEING, 40.0, 50.0),
            (PROCESSING, 50.0, 100.0),
        ]

    def test_adjacent_same_category_segments_merge(self):
        txn = _txn([
            SpanRecord(1, 0, QUEUEING, "q", 0.0, 10.0),
            SpanRecord(2, 0, QUEUEING, "q", 10.0, 30.0),
        ])
        path = txn.critical_path()
        assert (path[0]["t0"], path[0]["t1"]) == (0.0, 30.0)
        assert len(path) == 2                   # merged + trailing model

    def test_spans_clamped_to_transaction_window(self):
        txn = _txn([SpanRecord(1, 0, SERIALIZATION, "s", -10.0, 250.0)])
        [segment] = txn.critical_path()
        assert (segment["t0"], segment["t1"]) == (0.0, 100.0)

    def test_attribution_sums_exactly_to_duration(self):
        txn = _txn([
            SpanRecord(1, 0, QUEUEING, "q", 0.0, 60.0),
            SpanRecord(2, 0, ARBITRATION, "a", 30.0, 45.0),
            SpanRecord(3, 0, SERIALIZATION, "s", 60.0, 80.0),
        ])
        totals = txn.attribution()
        assert sum(totals.values()) == pytest.approx(txn.duration)
        assert totals[ARBITRATION] == pytest.approx(15.0)
        assert totals[QUEUEING] == pytest.approx(45.0)

    def test_zero_duration_transaction_has_empty_path(self):
        assert _txn([], begin=5.0, end=5.0).critical_path() == []

    def test_dag_nests_children_under_parents(self):
        txn = _txn([
            SpanRecord(1, 0, QUEUEING, "q", 0.0, 50.0),
            SpanRecord(2, 1, CREDIT_STALL, "c", 10.0, 20.0),
        ])
        dag = txn.dag()
        [root] = dag["spans"]
        assert root["sid"] == 1
        assert [child["sid"] for child in root["children"]] == [2]


class TestCollectTransactions:
    def test_unfinished_transactions_skipped(self):
        recorder = CausalRecorder()
        done, pending = recorder.sample_root(), recorder.sample_root()
        recorder.txn_begin(done, 0.0, "read", "r")
        recorder.txn_end(done, 10.0)
        recorder.txn_begin(pending, 5.0, "read", "r")
        txns = collect_transactions(recorder)
        assert [txn.trace_id for txn in txns] == [done.trace_id]

    def test_never_closed_span_clamps_to_transaction_end(self):
        recorder = CausalRecorder()
        ctx = recorder.sample_root()
        recorder.txn_begin(ctx, 0.0, "read", "r")
        recorder.begin(ctx, 2.0, QUEUEING, "q")    # never ended
        recorder.txn_end(ctx, 10.0)
        [txn] = collect_transactions(recorder)
        [span] = txn.spans
        assert span.t1 == 10.0


# --------------------------------------------------------------------------
# bit-identity: tracing must not perturb the model
# --------------------------------------------------------------------------

class TestBitIdentity:
    @pytest.mark.parametrize("name", ["t2", "starvation", "interleave"])
    def test_causal_on_off_and_sampled_identical(self, name):
        plain = run_scenario(name, telemetry=True)
        full = run_scenario(name, causal=True)
        sampled = run_scenario(name, causal=True, causal_sample=7)
        assert plain.summary == full.summary == sampled.summary
        events = lambda r: r.env.stats["events_processed"]   # noqa: E731
        assert events(plain) == events(full) == events(sampled)
        assert 0 < sampled.causal.started < full.causal.started

    def test_untraced_run_has_no_recorder(self):
        result = run_scenario("t2", telemetry=True)
        assert result.causal is None
        with pytest.raises(ValueError, match="causal"):
            result.attribution_report()

    def test_causal_requires_telemetry(self):
        with pytest.raises(ValueError, match="telemetry"):
            run_scenario("t2", telemetry=False, causal=True)


# --------------------------------------------------------------------------
# scenario attribution: the paper's pathologies, located
# --------------------------------------------------------------------------

@pytest.fixture(scope="module")
def starvation_report():
    return run_scenario("starvation", causal=True).attribution_report()


@pytest.fixture(scope="module")
def interleave_report():
    return run_scenario("interleave", causal=True).attribution_report()


class TestScenarioAttribution:
    def test_starvation_victim_is_mostly_credit_stalled(
            self, starvation_report):
        validate_attribution(starvation_report)
        quiet = starvation_report["routes"]["quiet"]
        stall_share = quiet["attribution"][CREDIT_STALL]["share"]
        assert stall_share > 0.5, (
            "the starved quiet flow must spend the majority of its "
            f"critical path blocked on credits, got {stall_share:.1%}")
        hot = starvation_report["routes"]["hot"]
        assert hot["attribution"][CREDIT_STALL]["share"] < stall_share

    def test_interleave_reads_dominated_by_queueing(
            self, interleave_report):
        validate_attribution(interleave_report)
        [(route, data)] = interleave_report["routes"].items()
        assert route.endswith("MemRd")
        table = data["attribution"]
        dominant = max(table, key=lambda cat: table[cat]["ns"])
        assert dominant == QUEUEING, (
            "64B reads behind 16KB writes through a FIFO egress must "
            f"be queueing-bound, got {dominant}")
        combined = table[QUEUEING]["share"] + table[SERIALIZATION]["share"]
        assert combined > 0.5

    def test_report_schema_and_waterfalls(self, interleave_report):
        count = validate_attribution(interleave_report)
        assert count == len(interleave_report["transactions"]) > 0
        assert interleave_report["trace"]["sample"] == 1
        for txn in interleave_report["transactions"]:
            assert txn["critical_path"], "every txn carries a waterfall"
        json.dumps(interleave_report)           # round-trippable
        digest = interleave_report["attribution"][QUEUEING]["per_txn"]
        assert digest["count"] > 0
        assert digest["p50"] <= digest["p95"] <= digest["p99"]

    def test_validator_rejects_tampering(self, interleave_report):
        broken = json.loads(json.dumps(interleave_report))
        broken["attribution"][QUEUEING]["share"] += 0.5
        with pytest.raises(AttributionError, match="shares sum"):
            validate_attribution(broken)
        broken = json.loads(json.dumps(interleave_report))
        del broken["attribution"][CREDIT_STALL]
        with pytest.raises(AttributionError, match="categories"):
            validate_attribution(broken)
        broken = json.loads(json.dumps(interleave_report))
        broken["transactions"][0]["critical_path"][0]["t1"] += 50.0
        with pytest.raises(AttributionError):
            validate_attribution(broken)
        with pytest.raises(AttributionError, match="schema-1"):
            validate_attribution({"tool": "other"})


# --------------------------------------------------------------------------
# degenerate topologies: samplers and probes must not care
# --------------------------------------------------------------------------

class TestDegenerateTopologies:
    def test_sampler_over_portless_switch(self):
        env = Environment(telemetry=True)
        switch = FabricSwitch(env, "lonely")
        sampler = TimelineSampler(env, interval_ns=100.0).start()

        def tick():
            yield env.timeout(1_000.0)

        run_proc(env, tick())
        assert switch.port_count() == 0
        # The horizon event at t=1000 fires before the sampler's own
        # t=1000 tick is drained, so exactly nine samples land.
        assert sampler.samples_taken == 9
        snapshot = env.telemetry.registry.snapshot()
        assert "pcie.lonely.flits_forwarded" in snapshot["metrics"]

    def test_credit_domain_with_zero_flows(self):
        env = Environment(telemetry=True)
        domain = CreditDomain(env, budget=16, name="empty")
        domain.start()
        TimelineSampler(env, interval_ns=500.0).start()

        def tick():
            yield env.timeout(10_000.0)         # several rebalances

        run_proc(env, tick())
        assert env.now == 10_000.0
        assert domain.flow_names() == []

    def test_sampler_attached_after_env_drained(self):
        env = Environment(telemetry=True)

        def tick():
            yield env.timeout(50.0)

        env.process(tick())
        env.run()                               # drains completely
        sampler = TimelineSampler(env, interval_ns=10.0).start()
        sampler.sample_once()
        assert sampler.samples_taken == 1
        env.run(until=env.now + 25.0)           # the loop resumes
        assert sampler.samples_taken >= 3

    def test_causal_scenario_with_sampling_faster_than_traffic(self):
        # One root in 1000 candidates: usually zero transactions traced.
        result = run_scenario("t2", causal=True, causal_sample=1000)
        report = result.attribution_report()
        validate_attribution(report)
        assert report["trace"]["analyzed"] <= 1


# --------------------------------------------------------------------------
# compare: regression detection
# --------------------------------------------------------------------------

def _bench(rate, failures=()):
    return {"experiments": [{"name": "des_kernel",
                             "events_per_sec": rate}],
            "invariant_failures": list(failures)}


class TestCompare:
    def test_events_per_sec_regression_detected(self):
        regressions, _ = compare_payloads(_bench(1_000_000.0),
                                          _bench(880_000.0))
        assert len(regressions) == 1
        assert "12.0%" in regressions[0]

    def test_small_drift_and_improvement_pass(self):
        regressions, _ = compare_payloads(_bench(1_000_000.0),
                                          _bench(950_000.0))
        assert regressions == []
        regressions, notes = compare_payloads(_bench(1_000_000.0),
                                              _bench(1_500_000.0))
        assert regressions == []
        assert any("improved" in note for note in notes)

    def test_newly_failing_invariant_is_regression(self):
        regressions, _ = compare_payloads(
            _bench(1_000_000.0), _bench(1_000_000.0, ["t2_ratio"]))
        assert any("invariant" in r for r in regressions)

    def test_mismatched_kinds_rejected(self):
        with pytest.raises(ComparisonError, match="kinds differ"):
            compare_payloads(_bench(1.0), {"tool": "repro-why",
                                           "attribution": {}})

    def test_attribution_stall_growth_is_regression(self):
        def doc(stall, processing):
            total = stall + processing
            table = {cat: {"ns": 0.0, "share": 0.0} for cat in CATEGORIES}
            table[CREDIT_STALL] = {"ns": stall, "share": stall / total}
            table[PROCESSING] = {"ns": processing,
                                 "share": processing / total}
            return {"tool": "repro-why", "scenario": "s",
                    "attribution": table, "routes": {}}
        regressions, _ = compare_payloads(doc(10.0, 90.0), doc(40.0, 60.0))
        assert any(CREDIT_STALL in r for r in regressions)
        # The reverse direction (stall shrank) is a note, not a failure.
        regressions, notes = compare_payloads(doc(40.0, 60.0),
                                              doc(10.0, 90.0))
        assert regressions == []
        assert notes


class TestCompareCli:
    def test_injected_regression_exits_nonzero(self, tmp_path, capsys):
        base = tmp_path / "a.json"
        cand = tmp_path / "b.json"
        base.write_text(json.dumps(_bench(1_000_000.0)))
        cand.write_text(json.dumps(_bench(880_000.0)))
        assert main(["compare", str(base), str(cand)]) == 1
        assert "REGRESSION" in capsys.readouterr().out
        # identical payloads pass
        assert main(["compare", str(base), str(base)]) == 0

    def test_bad_input_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        assert main(["compare", str(bad), str(bad)]) == 2
        assert "error" in capsys.readouterr().err


# --------------------------------------------------------------------------
# the why CLI
# --------------------------------------------------------------------------

class TestWhyCli:
    def test_json_output_validates(self, capsys):
        assert main(["why", "--scenario", "starvation", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert validate_attribution(payload) > 0
        assert payload["scenario"] == "starvation"
        assert payload["summary"]["quiet_stall_ns"] > 0

    def test_human_output_and_waterfall(self, capsys):
        assert main(["why", "--scenario", "starvation", "--txn", "0"]) == 0
        out = capsys.readouterr().out
        assert "credit_stall" in out
        assert "txn 0:" in out
        assert "egress0.serialize" in out

    def test_unknown_scenario_exits_two(self, capsys):
        assert main(["why", "--scenario", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_txn_out_of_range_exits_two(self, capsys):
        assert main(["why", "--scenario", "t2", "--txn", "9999"]) == 2
        assert "--txn" in capsys.readouterr().err

    def test_sampled_run_traces_fewer(self, capsys):
        assert main(["why", "--scenario", "starvation", "--json",
                     "--sample", "16"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["trace"]["sample"] == 16
        assert payload["trace"]["started"] < payload["trace"]["roots_seen"]


# --------------------------------------------------------------------------
# metrics percentiles (histogram p50/p95/p99 in snapshots)
# --------------------------------------------------------------------------

class TestHistogramPercentiles:
    def test_snapshot_carries_percentiles(self):
        from repro.telemetry import MetricRegistry
        histogram = MetricRegistry().histogram("lat")
        for value in (1.0, 2.0, 5.0, 10.0, 100.0):
            histogram.observe(value)
        snapshot = histogram.to_dict()
        assert {"p50", "p95", "p99"} <= set(snapshot)
        assert snapshot["p50"] <= snapshot["p95"] <= snapshot["p99"]

    def test_empty_histogram_percentiles_none(self):
        from repro.telemetry import MetricRegistry
        snapshot = MetricRegistry().histogram("lat").to_dict()
        assert snapshot["p50"] is None
        assert snapshot["p99"] is None

    def test_metrics_cli_json_includes_percentiles(self, capsys):
        assert main(["metrics", "t2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        histograms = [entry for entry in payload["metrics"].values()
                      if entry["kind"] == "histogram"]
        assert histograms
        assert all("p95" in entry for entry in histograms)
