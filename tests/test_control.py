"""Closed-loop control plane: actuators, policies, determinism.

The contract under test (ISSUE 10 / ROADMAP "closed-loop control
plane"): every actuation surface sits behind the uniform Actuator
protocol with validated bounds and a sim-time-stamped action log; the
ControlPlane applies declarative FeedbackPolicy rules at window-close
edges only; closed-loop runs are bit-identical across reruns; and
with no feedback policy attached the plane is a true no-op —
``events_processed`` equals the plain health run exactly.
"""

import json

import pytest

from repro.control import (
    Actuator,
    ControlError,
    ControlPlane,
    CreditActuator,
    FeedbackPolicy,
    HeapActuator,
    Knob,
    LinkActuator,
    MovementActuator,
    default_feedback_policy,
)
from repro.pcie.credits import (CreditDomain, RampUpPolicy,
                                StaticEqualPolicy, WeightedSharePolicy)
from repro.sim import Environment
from repro.telemetry.health import HealthError, run_health

ALERT_NS = 14_000.0


# --------------------------------------------------------------------------
# the actuator protocol
# --------------------------------------------------------------------------

class _Toy(Actuator):
    """Minimal concrete actuator for protocol-level tests."""

    def __init__(self):
        super().__init__()
        self.name = "toy"
        self.level = 1.0

    def knobs(self):
        return {"level": Knob("level", "float", "the level",
                              positive=True, maximum=10.0)}

    def current(self):
        return {"level": self.level}

    def _apply(self, settings):
        self.level = settings["level"]


class TestActuatorProtocol:
    def test_apply_validates_and_logs(self):
        toy = _Toy()
        entry = toy.apply({"level": 4.0}, time=2_000.0, rule="r")
        assert toy.level == 4.0
        assert entry["t"] == 2_000.0 and entry["rule"] == "r"
        assert entry["before"] == {"level": 1.0}
        assert entry["after"] == {"level": 4.0}
        assert toy.history == [entry]

    def test_unknown_knob_lists_the_knobs(self):
        with pytest.raises(ControlError, match="unknown knob 'vibe'"):
            _Toy().apply({"vibe": 1.0}, time=0.0)

    def test_bounds_enforced_with_path(self):
        with pytest.raises(ControlError, match="toy.level"):
            _Toy().apply({"level": 99.0}, time=0.0)
        with pytest.raises(ControlError, match="toy.level"):
            _Toy().apply({"level": -1.0}, time=0.0)

    def test_empty_settings_rejected(self):
        with pytest.raises(ControlError, match="non-empty"):
            _Toy().apply({}, time=0.0)

    def test_describe_is_json_able(self):
        desc = _Toy().describe()
        assert desc["actuator"] == "toy"
        assert desc["knobs"]["level"]["max"] == 10.0
        assert desc["current"] == {"level": 1.0}
        json.dumps(desc)   # schema-stable payload


class TestCreditActuator:
    def _domain(self):
        env = Environment()
        domain = CreditDomain(env, budget=32, policy=RampUpPolicy(),
                              rebalance_ns=2_000.0, name="egress0")
        domain.register("hot")
        domain.register("quiet")
        return env, domain

    def test_weights_install_weighted_share_policy(self):
        env, domain = self._domain()
        actuator = CreditActuator(domain)
        assert actuator.name == "credits.egress0"
        actuator.apply({"weights": {"hot": 3.0, "quiet": 1.0}},
                       time=0.0)
        assert isinstance(domain.policy, WeightedSharePolicy)
        assert domain.granted("hot") == 24
        assert domain.granted("quiet") == 8

    def test_unknown_flow_rejected_with_registered_list(self):
        env, domain = self._domain()
        with pytest.raises(ControlError,
                           match=r"weights\.cold: unknown flow"):
            CreditActuator(domain).apply(
                {"weights": {"cold": 1.0}}, time=0.0)

    def test_rebalance_cadence_knob(self):
        env, domain = self._domain()
        CreditActuator(domain).apply({"rebalance_ns": 500.0}, time=0.0)
        assert domain.rebalance_ns == 500.0


class TestWeightedSharePolicy:
    def test_largest_remainder_apportionment(self):
        env = Environment()
        domain = CreditDomain(env, budget=10, name="d")
        for flow in ("a", "b", "c"):
            domain.register(flow)
        targets = WeightedSharePolicy(
            {"a": 1.0, "b": 1.0, "c": 1.0}).targets(domain)
        assert sum(targets.values()) == 10
        assert sorted(targets.values()) == [3, 3, 4]

    def test_rejects_bad_weights(self):
        with pytest.raises(ValueError, match="at least one flow"):
            WeightedSharePolicy({})
        with pytest.raises(ValueError, match="must be a number > 0"):
            WeightedSharePolicy({"a": 0.0})
        with pytest.raises(ValueError, match="must be a number > 0"):
            WeightedSharePolicy({"a": True})

    def test_unweighted_flows_fall_back_to_equal_split(self):
        env = Environment()
        domain = CreditDomain(env, budget=32, name="d")
        domain.register("x")
        domain.register("y")
        targets = WeightedSharePolicy({"other": 2.0}).targets(domain)
        assert targets == StaticEqualPolicy().targets(domain)


class TestLinkActuator:
    def _link(self):
        from repro import params
        from repro.fabric.link import LinkLayer
        env = Environment()
        return LinkLayer(env, params.LinkParams(credits=8), vcs=2,
                         name="l0")

    def test_grant_and_revoke_to_target(self):
        link = self._link()
        actuator = LinkActuator(link, vc=1, name="link.l0")
        actuator.apply({"granted": 12}, time=0.0)
        assert link.credits_granted(1) == 12
        entry = actuator.apply({"granted": 2}, time=100.0)
        assert link.credits_granted(1) == 2
        assert entry["before"]["granted"] == 12

    def test_vc_out_of_range_rejected(self):
        with pytest.raises(ControlError, match="vc 7 out of range"):
            LinkActuator(self._link(), vc=7)

    def test_granted_floor_is_one(self):
        with pytest.raises(ControlError, match="granted"):
            LinkActuator(self._link()).apply({"granted": 0}, time=0.0)


class TestHeapAndMovementActuators:
    def test_heap_cross_field_validation(self):
        class _Runtime:
            interval_ns = 1000.0
            promote_threshold = 4.0
            demote_threshold = 1.0
        with pytest.raises(ControlError, match="must exceed"):
            HeapActuator(_Runtime()).apply(
                {"promote_threshold": 0.5}, time=0.0)

    def test_movement_bw_needs_buckets(self):
        class _Orch:
            pacing_ns = 0.0
            remote_bw_bytes_per_us = None
            burst_bytes = 4096
            _buckets = {}
        with pytest.raises(ControlError, match="bandwidth budget"):
            MovementActuator(_Orch()).apply(
                {"remote_bw_bytes_per_us": 64.0}, time=0.0)


# --------------------------------------------------------------------------
# feedback policies
# --------------------------------------------------------------------------

class TestFeedbackPolicyParsing:
    def test_default_starvation_policy_parses(self):
        policy = FeedbackPolicy(default_feedback_policy("starvation"))
        assert [rule.name for rule in policy.rules] == ["rescue-quiet"]
        assert policy.rules[0].max_firings == 1

    def test_no_default_for_other_scenarios(self):
        with pytest.raises(ControlError, match="no default feedback"):
            default_feedback_policy("t2")

    def test_unknown_condition_kind_path(self):
        with pytest.raises(ControlError,
                           match=r"rules\[0\]\.when\.kind"):
            FeedbackPolicy({"rules": [{
                "name": "r", "when": {"kind": "vibes", "above": 1.0},
                "then": {"actuator": "a", "set": {"x": 1}}}]})

    def test_unknown_category_path(self):
        with pytest.raises(ControlError,
                           match=r"rules\[0\]\.when\.category"):
            FeedbackPolicy({"rules": [{
                "name": "r",
                "when": {"kind": "attribution_share", "route": "q",
                         "category": "luck", "above": 0.5},
                "then": {"actuator": "a", "set": {"x": 1}}}]})

    def test_exactly_one_comparator_required(self):
        when = {"kind": "counter_delta", "counter": "c"}
        rule = {"name": "r", "when": dict(when),
                "then": {"actuator": "a", "set": {"x": 1}}}
        with pytest.raises(ControlError, match="exactly one"):
            FeedbackPolicy({"rules": [rule]})
        rule["when"] = {**when, "above": 1.0, "below": 2.0}
        with pytest.raises(ControlError, match="exactly one"):
            FeedbackPolicy({"rules": [rule]})

    def test_below_comparator_fires_on_undershoot(self):
        policy = FeedbackPolicy({"rules": [{
            "name": "r",
            "when": {"kind": "gauge_level", "gauge": "g",
                     "below": 0.5},
            "then": {"actuator": "a", "set": {"x": 1}}}]})
        when = policy.rules[0].when
        assert when.fires(0.0) and not when.fires(0.5)
        assert when.to_dict()["below"] == 0.5

    def test_duplicate_rule_names_rejected(self):
        rule = {"name": "r",
                "when": {"kind": "counter_delta", "counter": "c",
                         "above": 1.0},
                "then": {"actuator": "a", "set": {"x": 1}}}
        with pytest.raises(ControlError, match="duplicate"):
            FeedbackPolicy({"rules": [rule, dict(rule)]})

    def test_unknown_rule_keys_rejected_with_path(self):
        with pytest.raises(ControlError,
                           match=r"rules\[0\]: unknown key"):
            FeedbackPolicy({"rules": [{
                "name": "r", "frequency": 2,
                "when": {"kind": "counter_delta", "counter": "c",
                         "above": 1.0},
                "then": {"actuator": "a", "set": {"x": 1}}}]})

    def test_load_errors(self, tmp_path):
        with pytest.raises(ControlError, match="cannot read"):
            FeedbackPolicy.load(tmp_path / "missing.json")
        (tmp_path / "bad.json").write_text("{nope")
        with pytest.raises(ControlError, match="not JSON"):
            FeedbackPolicy.load(tmp_path / "bad.json")

    def test_cooldown_gates_refiring(self):
        policy = FeedbackPolicy({"rules": [{
            "name": "r",
            "when": {"kind": "counter_delta", "counter": "c",
                     "above": 1.0},
            "then": {"actuator": "a", "set": {"x": 1}},
            "cooldown_windows": 2}]})
        rule = policy.rules[0]
        assert rule.ready(0)
        rule.firings, rule.last_window = 1, 0
        assert not rule.ready(1) and not rule.ready(2)
        assert rule.ready(3)


class TestControlPlane:
    def test_duplicate_actuator_rejected(self):
        plane = ControlPlane()
        plane.add_actuator(_Toy())
        with pytest.raises(ControlError, match="already registered"):
            plane.add_actuator(_Toy())

    def test_unknown_actuator_lists_registered(self):
        plane = ControlPlane()
        plane.add_actuator(_Toy())
        with pytest.raises(ControlError, match="registered: toy"):
            plane.actuator("nope")

    def test_final_windows_are_never_acted_on(self):
        policy = FeedbackPolicy({"rules": [{
            "name": "r",
            "when": {"kind": "counter_delta", "counter": "c",
                     "above": 0.0},
            "then": {"actuator": "toy", "set": {"level": 2.0}}}]})
        plane = ControlPlane(policy)
        plane.add_actuator(_Toy())
        window = {"index": 0, "t0": 0.0, "t1": 100.0, "final": True,
                  "counters": {"c": 5.0}, "gauges": {},
                  "histograms": {}, "attribution": {}}
        plane.on_window(window)
        assert plane.actions == []
        plane.on_window({**window, "final": False})
        assert len(plane.actions) == 1


# --------------------------------------------------------------------------
# end to end: the golden-pinned starvation rescue
# --------------------------------------------------------------------------

def _closed_loop_run():
    policy = FeedbackPolicy(default_feedback_policy("starvation"),
                            source="default")
    return run_health("starvation", feedback=policy)


class TestClosedLoopStarvation:
    def test_rescue_fires_at_the_alert_edge(self):
        result, report = _closed_loop_run()
        actions = report["control"]["actions"]
        assert [a["t"] for a in actions] == [ALERT_NS]
        assert actions[0]["rule"] == "rescue-quiet"
        assert actions[0]["after"]["granted"] == {"hot": 16,
                                                  "quiet": 16}

    def test_feedback_beats_static_without_starving_hot(self):
        static, _ = run_health("starvation")
        closed, _ = _closed_loop_run()
        assert closed.summary["quiet_stall_ns"] \
            < static.summary["quiet_stall_ns"]
        assert closed.summary["quiet_burst_ns"] \
            < static.summary["quiet_burst_ns"]
        assert closed.summary["hot_stall_ns"] == 0.0

    def test_reruns_are_bit_identical(self):
        result_a, report_a = _closed_loop_run()
        result_b, report_b = _closed_loop_run()
        assert result_a.summary == result_b.summary
        assert report_a["control"] == report_b["control"]
        assert result_a.env.stats["events_processed"] \
            == result_b.env.stats["events_processed"]

    def test_attached_plane_without_policy_is_zero_overhead(self):
        plain, _ = run_health("starvation")
        nofeed, report = run_health("starvation", feedback=None)
        assert "control" not in report
        assert nofeed.env.stats["events_processed"] \
            == plain.env.stats["events_processed"]
        assert nofeed.summary == plain.summary

    def test_feedback_wired_for_starvation_only(self):
        policy = FeedbackPolicy(default_feedback_policy("starvation"))
        with pytest.raises(HealthError, match="starvation scenario"):
            run_health("t2", feedback=policy)


class TestClosedLoopXswitch:
    def test_rescue_case_contains_the_starvation(self):
        from repro.experiments import run_summary
        summary = run_summary("xswitch_starvation",
                              feedback="default")
        cases = summary["cases"]
        assert cases["fifo rescue"]["mean_ns"] \
            < 0.5 * cases["fifo congested"]["mean_ns"]
        actions = summary["feedback"]["actions"]
        assert [a["rule"] for a in actions] == ["quench-flood"]
        assert actions[0]["actuator"] == "link.injection"
        assert actions[0]["t"] == 1_000.0

    def test_off_by_default_keeps_the_golden_table(self):
        from repro.experiments import run_summary
        summary = run_summary("xswitch_starvation")
        assert "feedback" not in summary
        assert sorted(summary["cases"]) == [
            "fair congested", "fifo congested", "fifo quiet"]
