"""Integration tests: endpoints talking through switches."""

import pytest

from repro import params
from repro.fabric import Channel, Packet, PacketKind
from repro.pcie import FabricManager, PortRole, Topology
from repro.sim import Environment


def star_fabric(env, hosts=1, devices=1, scheduler="fair", **topo_kw):
    """One switch, `hosts` host endpoints, `devices` device endpoints."""
    topo = Topology(env, scheduler=scheduler, **topo_kw)
    topo.add_switch("sw0")
    for h in range(hosts):
        topo.add_endpoint(f"host{h}")
        topo.connect_endpoint("sw0", f"host{h}", role=PortRole.UPSTREAM)
    for d in range(devices):
        topo.add_endpoint(f"dev{d}")
        topo.connect_endpoint("sw0", f"dev{d}")
    FabricManager(topo).configure()
    return topo


def memory_handler(port, service_ns=10.0):
    def handler(request):
        yield port.env.timeout(service_ns)
        return request.make_response()
    return handler


def read_packet(topo, src, dst, nbytes=64, kind=PacketKind.MEM_RD):
    channel = (Channel.CXL_IO if kind in (PacketKind.IO_RD, PacketKind.IO_WR)
               else Channel.CXL_MEM)
    return Packet(kind=kind, channel=channel,
                  src=topo.endpoints[src].global_id,
                  dst=topo.endpoints[dst].global_id,
                  nbytes=nbytes)


class TestSingleSwitch:
    def test_read_roundtrip_through_switch(self):
        env = Environment()
        topo = star_fabric(env)
        dev = topo.port_of("dev0")
        dev.serve(memory_handler(dev))
        host = topo.port_of("host0")
        results = []

        def client():
            rsp = yield from host.request(read_packet(topo, "host0", "dev0"))
            results.append((rsp.kind, env.now))

        env.process(client())
        env.run(until=100_000)
        assert results and results[0][0] is PacketKind.MEM_RD_DATA

    def test_unloaded_rtt_near_200ns_target(self):
        """Claim C4: unloaded 64B flit RTT ~200ns through one switch."""
        env = Environment()
        topo = star_fabric(env)
        dev = topo.port_of("dev0")
        dev.serve(memory_handler(dev, service_ns=0.0))
        host = topo.port_of("host0")
        rtts = []

        def client():
            for _ in range(5):
                start = env.now
                yield from host.request(read_packet(topo, "host0", "dev0"))
                rtts.append(env.now - start)
                yield env.timeout(1_000)  # unloaded: one at a time

        env.process(client())
        env.run(until=100_000)
        mean_rtt = sum(rtts) / len(rtts)
        assert 150.0 <= mean_rtt <= 250.0

    def test_many_hosts_one_device(self):
        env = Environment()
        topo = star_fabric(env, hosts=4)
        dev = topo.port_of("dev0")
        dev.serve(memory_handler(dev))
        done = []

        def client(h):
            port = topo.port_of(f"host{h}")
            for i in range(10):
                yield from port.request(read_packet(topo, f"host{h}", "dev0"))
            done.append(h)

        for h in range(4):
            env.process(client(h))
        env.run(until=1_000_000)
        assert sorted(done) == [0, 1, 2, 3]

    def test_unrouted_packet_dropped_not_crash(self):
        env = Environment()
        topo = Topology(env)
        topo.add_switch("sw0")
        topo.add_endpoint("host0")
        topo.connect_endpoint("sw0", "host0")
        # No fabric manager run: table is empty.
        host = topo.port_of("host0")

        def client():
            pkt = Packet(kind=PacketKind.IO_WR, channel=Channel.CXL_IO,
                         src=host.port_id, dst=999, nbytes=64)
            yield from host.post(pkt)

        env.process(client())
        env.run(until=10_000)  # must not raise


class TestMultiSwitch:
    def test_two_hop_path(self):
        env = Environment()
        topo = Topology(env)
        topo.add_switch("sw0")
        topo.add_switch("sw1")
        topo.connect_switches("sw0", "sw1")
        topo.add_endpoint("host0")
        topo.connect_endpoint("sw0", "host0", role=PortRole.UPSTREAM)
        topo.add_endpoint("fam0")
        topo.connect_endpoint("sw1", "fam0")
        FabricManager(topo).configure()
        fam = topo.port_of("fam0")
        fam.serve(memory_handler(fam))
        host = topo.port_of("host0")
        rtts = []

        def client():
            start = env.now
            yield from host.request(read_packet(topo, "host0", "fam0"))
            rtts.append(env.now - start)

        env.process(client())
        env.run(until=100_000)
        assert rtts
        # Two switch crossings each way: noticeably slower than 1 hop.
        assert rtts[0] > 2 * params.SWITCH_PORT_LATENCY_NS

    def test_cross_domain_hbr_routing(self):
        env = Environment()
        topo = Topology(env)
        topo.add_switch("swA", domain=0)
        topo.add_switch("swB", domain=1)
        topo.connect_switches("swA", "swB")  # HBR link
        topo.add_endpoint("hostA", domain=0)
        topo.connect_endpoint("swA", "hostA", role=PortRole.UPSTREAM)
        topo.add_endpoint("famB", domain=1)
        topo.connect_endpoint("swB", "famB")
        manager = FabricManager(topo)
        manager.configure()
        assert topo.is_hbr_link("swA", "swB")
        # swA must reach famB via a domain (HBR) route, not exact match.
        kinds = [kind for kind, _, _ in topo.switches["swA"].table.entries()]
        assert "hbr" in kinds
        fam = topo.port_of("famB")
        fam.serve(memory_handler(fam))
        host = topo.port_of("hostA")
        results = []

        def client():
            rsp = yield from host.request(read_packet(topo, "hostA", "famB"))
            results.append(rsp.kind)

        env.process(client())
        env.run(until=100_000)
        assert results == [PacketKind.MEM_RD_DATA]


class TestSchedulingDisciplines:
    def _small_read_worst_case(self, scheduler):
        """64B reads sharing an egress with 16KB writes (claim C3).

        The bulk traffic is *posted* (no completion wait) over a narrow
        x4 egress link, so the contended resource is the switch egress
        wire toward the device.
        """
        env = Environment()
        topo = Topology(env, scheduler=scheduler)
        topo.add_switch("sw0")
        for h in range(2):
            topo.add_endpoint(f"host{h}")
            topo.connect_endpoint("sw0", f"host{h}", role=PortRole.UPSTREAM)
        topo.add_endpoint("dev0")
        # Fast x16 uplinks converging on a narrow x4 device link: the
        # switch egress wire toward the device is the bottleneck.
        topo.connect_endpoint("sw0", "dev0",
                              link_params=params.LinkParams(lanes=4))
        FabricManager(topo).configure()
        dev = topo.port_of("dev0")

        def handler(request):
            yield env.timeout(params.FAM_ACCESS_NS)
            if request.kind is PacketKind.IO_WR:
                return None  # posted write: no completion
            return request.make_response()

        dev.serve(handler, concurrency=8)
        latencies = []

        def small_client():
            port = topo.port_of("host0")
            for _ in range(30):
                start = env.now
                yield from port.request(read_packet(topo, "host0", "dev0"))
                latencies.append(env.now - start)
                yield env.timeout(200.0)

        def bulk_client():
            port = topo.port_of("host1")
            for _ in range(60):
                pkt = read_packet(topo, "host1", "dev0", nbytes=16 * 1024,
                                  kind=PacketKind.IO_WR)
                yield from port.post(pkt)

        env.process(bulk_client())
        env.process(small_client())
        env.run(until=50_000_000)
        assert len(latencies) == 30
        return max(latencies)

    def test_fair_scheduler_bounds_small_flow_latency(self):
        fifo_worst = self._small_read_worst_case("fifo")
        fair_worst = self._small_read_worst_case("fair")
        assert fair_worst < fifo_worst


class TestFabricManager:
    def test_all_pairs_reachable_in_tree(self):
        env = Environment()
        topo = Topology(env)
        topo.add_switch("root")
        for leaf in ("l0", "l1"):
            topo.add_switch(leaf)
            topo.connect_switches("root", leaf)
        names = []
        for i, leaf in enumerate(("l0", "l0", "l1", "l1")):
            name = f"ep{i}"
            topo.add_endpoint(name)
            topo.connect_endpoint(leaf, name)
            names.append(name)
        manager = FabricManager(topo)
        installed = manager.configure()
        assert installed > 0
        for switch in topo.switches.values():
            for name in names:
                assert topo.endpoints[name].pbr in switch.table

    def test_describe_outputs(self):
        env = Environment()
        topo = star_fabric(env)
        manager = FabricManager(topo)
        manager.configure()
        assert "sw0" in manager.describe()
        assert "sw0" in topo.describe()
