"""Tests for the comparison baselines."""

import pytest

from repro import params
from repro.baselines import CommFabricChannel, StaticPlacementHeap
from repro.core import MovementOrchestrator
from repro.infra import ClusterSpec, build_cluster
from repro.sim import Environment


def run(env, gen, horizon=1_000_000_000):
    proc = env.process(gen)
    env.run(until=env.now + horizon)
    assert proc.triggered
    if not proc.ok:
        raise proc.value
    return proc.value


class TestCommFabric:
    def test_remote_read_pays_stack_taxes(self):
        env = Environment()
        nic = CommFabricChannel(env)

        def go():
            return (yield from nic.remote_read())

        latency = run(env, go())
        floor = (nic.stack_ns + nic.dma_setup_ns + nic.interrupt_ns)
        assert latency >= floor

    def test_small_transfer_slower_than_fabric_load(self):
        """Difference #1: the async path loses badly on 64B."""
        env = Environment()
        cluster = build_cluster(env, ClusterSpec(hosts=1))
        host = cluster.host(0)
        nic = CommFabricChannel(env)
        base = host.remote_base("fam0")

        def go():
            start = env.now
            yield from host.mem.access(base + 0x40000, False)
            fabric = env.now - start
            nic_latency = yield from nic.remote_read()
            return fabric, nic_latency

        fabric, nic_latency = run(env, go())
        assert nic_latency > fabric

    def test_large_transfer_amortizes_taxes(self):
        env = Environment()
        nic = CommFabricChannel(env)

        def go():
            small = yield from nic.transfer(64)
            large = yield from nic.transfer(1 << 20)
            return small, large

        small, large = run(env, go())
        # Fixed costs dominate the small one; wire time the large one.
        assert large / (1 << 20) < small / 64

    def test_wire_serializes_transfers(self):
        env = Environment()
        nic = CommFabricChannel(env, bandwidth_bytes_per_ns=1.0)
        done = []

        def one():
            yield from nic.transfer(10_000)
            done.append(env.now)

        env.process(one())
        env.process(one())
        env.run(until=10_000_000)
        assert len(done) == 2
        assert done[1] - done[0] >= 9_000  # second waited for the wire

    def test_kernel_launch_cost(self):
        env = Environment()
        nic = CommFabricChannel(env)

        def go():
            return (yield from nic.kernel_launch(kernel_ns=500.0))

        latency = run(env, go())
        assert latency > params.NIC_STACK_NS + 500.0

    def test_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            CommFabricChannel(env, bandwidth_bytes_per_ns=0)

        nic = CommFabricChannel(env)

        def go():
            yield from nic.transfer(-1)

        with pytest.raises(ValueError):
            run(env, go())


class TestStaticHeap:
    def _heap(self, env, placement):
        cluster = build_cluster(env, ClusterSpec(hosts=1))
        host = cluster.host(0)
        engine = MovementOrchestrator(env).attach_host(host)
        heap = StaticPlacementHeap(env, host, engine, placement=placement)
        heap.add_bin("local", start=1 << 20, size=1 << 20, tier="local",
                     is_remote=False)
        heap.add_bin("fam0", start=host.remote_base("fam0"),
                     size=1 << 20, tier="cpuless-numa", is_remote=True)
        return heap

    def test_first_fit_fills_first_bin(self):
        env = Environment()
        heap = self._heap(env, "first")
        pointers = [heap.allocate(4096) for _ in range(4)]
        assert all(p.tier == "local" for p in pointers)

    def test_round_robin_stripes_bins(self):
        env = Environment()
        heap = self._heap(env, "round-robin")
        tiers = [heap.allocate(4096).tier for _ in range(4)]
        assert tiers == ["local", "cpuless-numa"] * 2

    def test_migration_is_disabled(self):
        env = Environment()
        heap = self._heap(env, "first")
        pointer = heap.allocate(4096)

        def go():
            moved = yield from heap.migrate(pointer.oid,
                                            heap.bins["fam0"])
            return moved

        assert run(env, go()) is False
        assert pointer.tier == "local"

    def test_unknown_placement_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            self._heap(env, "magic")
