"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import (
    Environment,
    Event,
    Interrupt,
    SimulationError,
)


def test_timeout_advances_clock():
    env = Environment()
    done = []

    def proc():
        yield env.timeout(10)
        done.append(env.now)
        yield env.timeout(5)
        done.append(env.now)

    env.process(proc())
    env.run()
    assert done == [10, 15]


def test_timeout_value_passthrough():
    env = Environment()
    seen = []

    def proc():
        value = yield env.timeout(1, value="hello")
        seen.append(value)

    env.process(proc())
    env.run()
    assert seen == ["hello"]


def test_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_process_return_value():
    env = Environment()

    def child():
        yield env.timeout(3)
        return 42

    def parent(results):
        value = yield env.process(child())
        results.append(value)

    results = []
    env.process(parent(results))
    env.run()
    assert results == [42]


def test_event_succeed_wakes_waiter():
    env = Environment()
    gate = env.event()
    woke = []

    def waiter():
        value = yield gate
        woke.append((env.now, value))

    def opener():
        yield env.timeout(7)
        gate.succeed("open")

    env.process(waiter())
    env.process(opener())
    env.run()
    assert woke == [(7, "open")]


def test_event_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_raises_in_waiter():
    env = Environment()
    gate = env.event()
    caught = []

    def waiter():
        try:
            yield gate
        except RuntimeError as exc:
            caught.append(str(exc))

    def failer():
        yield env.timeout(1)
        gate.fail(RuntimeError("boom"))

    env.process(waiter())
    env.process(failer())
    env.run()
    assert caught == ["boom"]


def test_fail_requires_exception():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")


def test_process_exception_propagates_to_parent():
    env = Environment()

    def child():
        yield env.timeout(1)
        raise ValueError("child died")

    def parent(seen):
        try:
            yield env.process(child())
        except ValueError as exc:
            seen.append(str(exc))

    seen = []
    env.process(parent(seen))
    env.run()
    assert seen == ["child died"]


def test_interrupt_delivers_cause():
    env = Environment()
    log = []

    def victim():
        try:
            yield env.timeout(100)
        except Interrupt as interrupt:
            log.append((env.now, interrupt.cause))

    def interrupter(proc):
        yield env.timeout(10)
        proc.interrupt("preempted")

    proc = env.process(victim())
    env.process(interrupter(proc))
    env.run()
    assert log == [(10, "preempted")]


def test_interrupt_dead_process_is_error():
    env = Environment()

    def quick():
        yield env.timeout(1)

    proc = env.process(quick())
    env.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_interrupted_process_can_continue():
    env = Environment()
    log = []

    def victim():
        try:
            yield env.timeout(100)
        except Interrupt:
            pass
        yield env.timeout(5)
        log.append(env.now)

    def interrupter(proc):
        yield env.timeout(10)
        proc.interrupt()

    proc = env.process(victim())
    env.process(interrupter(proc))
    env.run()
    assert log == [15]


def test_all_of_waits_for_every_event():
    env = Environment()
    times = []

    def proc():
        t1 = env.timeout(5, value="a")
        t2 = env.timeout(9, value="b")
        results = yield env.all_of([t1, t2])
        times.append(env.now)
        assert set(results.values()) == {"a", "b"}

    env.process(proc())
    env.run()
    assert times == [9]


def test_any_of_fires_on_first():
    env = Environment()
    times = []

    def proc():
        t1 = env.timeout(5, value="fast")
        t2 = env.timeout(50, value="slow")
        results = yield env.any_of([t1, t2])
        times.append(env.now)
        assert "fast" in results.values()

    env.process(proc())
    env.run(until=100)
    assert times == [5]


def test_run_until_time_stops_clock():
    env = Environment()

    def proc():
        while True:
            yield env.timeout(10)

    env.process(proc())
    env.run(until=35)
    assert env.now == 35


def test_run_until_event_returns_value():
    env = Environment()

    def proc():
        yield env.timeout(4)
        return "finished"

    result = env.run(until_event=env.process(proc()))
    assert result == "finished"
    assert env.now == 4


def test_run_until_past_time_rejected():
    env = Environment()
    env.process(iter_timeout(env, 10))
    env.run()
    with pytest.raises(ValueError):
        env.run(until=5)


def iter_timeout(env, delay):
    yield env.timeout(delay)


def test_deterministic_ordering_fifo_at_same_time():
    env = Environment()
    order = []

    def proc(tag):
        yield env.timeout(10)
        order.append(tag)

    for tag in range(5):
        env.process(proc(tag))
    env.run()
    assert order == [0, 1, 2, 3, 4]


def test_yield_non_event_raises():
    env = Environment()

    def bad():
        yield 42

    proc = env.process(bad())
    env.run()
    assert proc.triggered
    assert not proc.ok
    assert isinstance(proc.value, SimulationError)


def test_yield_already_processed_event_resumes_immediately():
    env = Environment()
    log = []

    def proc():
        timeout = env.timeout(1, value="early")
        yield env.timeout(10)
        value = yield timeout  # fired long ago
        log.append((env.now, value))

    env.process(proc())
    env.run()
    assert log == [(10, "early")]


def test_step_empty_queue_is_error():
    env = Environment()
    with pytest.raises(SimulationError):
        env.step()


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(42)
    assert env.peek() == 42
    env2 = Environment()
    assert env2.peek() == float("inf")


def test_active_process_visible_during_execution():
    env = Environment()
    seen = []

    def proc():
        seen.append(env.active_process)
        yield env.timeout(1)

    p = env.process(proc())
    env.run()
    assert seen == [p]
    assert env.active_process is None


def test_process_failure_with_no_waiter_is_silent():
    env = Environment()

    def doomed():
        yield env.timeout(1)
        raise RuntimeError("nobody is listening")

    proc = env.process(doomed())
    env.run()   # must not raise at the environment level
    assert proc.triggered and not proc.ok


def test_failed_plain_event_with_no_waiter_raises():
    env = Environment()

    def failer():
        ev = env.event()
        yield env.timeout(1)
        ev.fail(RuntimeError("unobserved"))

    env.process(failer())
    with pytest.raises(RuntimeError):
        env.run()


def test_interrupt_cause_none_by_default():
    env = Environment()
    seen = []

    def victim():
        try:
            yield env.timeout(50)
        except Interrupt as interrupt:
            seen.append(interrupt.cause)

    proc = env.process(victim())

    def interrupter():
        yield env.timeout(1)
        proc.interrupt()

    env.process(interrupter())
    env.run()
    assert seen == [None]


def test_all_of_empty_fires_immediately():
    env = Environment()
    times = []

    def proc():
        yield env.all_of([])
        times.append(env.now)

    env.process(proc())
    env.run()
    assert times == [0]


def test_condition_with_already_failed_event_rejects():
    env = Environment()
    dead = env.event()
    dead.callbacks.append(lambda e: None)   # defuse
    dead.fail(ValueError("pre-failed"))
    env.run()   # process the failure
    caught = []

    def proc():
        try:
            yield env.all_of([dead, env.timeout(5)])
        except ValueError as exc:
            caught.append(str(exc))

    env.process(proc())
    env.run()
    assert caught == ["pre-failed"]


def test_process_target_visible_while_waiting():
    env = Environment()

    def sleeper():
        yield env.timeout(10)

    proc = env.process(sleeper())
    env.step()   # run the initializer
    assert proc.target is not None
    env.run()
    assert proc.triggered


# -- fast-path satellites -------------------------------------------------


def test_run_until_lands_on_until_when_queue_drains_early():
    env = Environment()
    env.process(iter_timeout(env, 10))
    env.run(until=50)
    # The queue drained at t=10; the clock must still land on `until`.
    assert env.now == 50


def test_run_until_lands_on_until_with_unfired_event():
    env = Environment()
    env.process(iter_timeout(env, 10))
    never = env.event()
    result = env.run(until=50, until_event=never)
    assert result is None
    assert env.now == 50


def test_stale_interrupt_on_process_that_died_is_dropped():
    env = Environment()
    causes = []

    def victim():
        try:
            yield env.timeout(100)
        except Interrupt as interrupt:
            causes.append(interrupt.cause)
        # Returning here kills the process while the second interrupt
        # wakeup is still queued; that wakeup must be dropped, not
        # thrown into the exhausted generator.

    def attacker(proc):
        yield env.timeout(5)
        proc.interrupt("first")
        proc.interrupt("second")

    proc = env.process(victim())
    env.process(attacker(proc))
    env.run()
    assert causes == ["first"]
    assert proc.triggered
    assert proc.ok


def test_interrupt_scheduled_then_process_finishes_same_tick():
    env = Environment()
    order = []

    def victim():
        try:
            yield env.timeout(5)
            order.append("finished")
        except Interrupt as interrupt:
            order.append(f"interrupted:{interrupt.cause}")

    def attacker(proc):
        # t=0, before victim's initializer has run its first step: the
        # interrupt wakeup and the initializer share the tick.
        proc.interrupt("early")
        return
        yield

    proc = env.process(victim())
    env.process(attacker(proc))
    env.run()
    assert order == ["interrupted:early"]
    assert proc.triggered


def test_two_processes_share_one_timeout_fifo_order():
    env = Environment()
    order = []
    timeout = None

    def maker():
        nonlocal timeout
        timeout = env.timeout(10)
        yield timeout
        order.append("first")

    def follower():
        yield env.timeout(0)
        yield timeout
        order.append("second")

    env.process(maker())
    env.process(follower())
    env.run()
    assert order == ["first", "second"]


def test_environment_stats_counters():
    env = Environment()

    def ticker():
        for _ in range(50):
            yield env.timeout(1.0)

    for _ in range(4):
        env.process(ticker())
    env.run()
    stats = env.stats
    # 4 starts + 4*50 timeouts + 4 completions.
    assert stats["events_processed"] == 4 + 200 + 4
    assert stats["events_per_sec"] > 0
    assert stats["peak_queue_depth"] >= 4
    assert stats["pooled_timeouts"] >= 1


def test_run_proc_exported_from_sim():
    from repro.sim import run_proc

    env = Environment()

    def job():
        yield env.timeout(7)
        return "ok"

    assert run_proc(env, job()) == "ok"
    assert env.now == 7


def test_run_proc_horizon_raises():
    from repro.sim import run_proc

    env = Environment()

    def forever():
        while True:
            yield env.timeout(10)

    with pytest.raises(RuntimeError):
        run_proc(env, forever(), horizon=100)
