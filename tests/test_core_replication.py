"""Tests for node replication over fabric memory (DP#2 data structure)."""

import pytest

from repro.core import NodeReplicatedObject, UniFabric
from repro.infra import ClusterSpec, build_cluster
from repro.sim import Environment


def apply_counter(state, operation):
    state["value"] = state.get("value", 0) + operation


def make(env, hosts=2):
    cluster = build_cluster(env, ClusterSpec(hosts=hosts))
    uni = UniFabric(env, cluster)
    nr = NodeReplicatedObject(env, apply_counter,
                              initial_state={"value": 0})
    handles = {f"host{i}": nr.attach(uni.heap(f"host{i}"),
                                     shared_tier="cpuless-numa")
               for i in range(hosts)}
    return cluster, nr, handles


def run(env, gen, horizon=100_000_000_000):
    proc = env.process(gen)
    env.run(until=env.now + horizon, until_event=proc)
    assert proc.triggered
    if not proc.ok:
        raise proc.value
    return proc.value


class TestReplication:
    def test_write_visible_on_other_replica(self):
        env = Environment()
        _, nr, handles = make(env)

        def go():
            yield from handles["host0"].write(5)
            yield from handles["host0"].write(2)
            value = yield from handles["host1"].read(
                lambda s: s["value"])
            return value

        assert run(env, go()) == 7
        assert nr.log_length == 2
        assert nr.entries_replayed >= 2   # host1 replayed both

    def test_interleaved_writers_converge(self):
        env = Environment()
        _, nr, handles = make(env)

        def go():
            for i in range(5):
                yield from handles["host0"].write(1)
                yield from handles["host1"].write(10)
            a = yield from handles["host0"].read(lambda s: s["value"])
            b = yield from handles["host1"].read(lambda s: s["value"])
            return a, b

        a, b = run(env, go())
        assert a == b == 55

    def test_reads_are_cheap_after_catch_up(self):
        env = Environment()
        _, nr, handles = make(env)

        def go():
            yield from handles["host0"].write(1)
            # First read replays; subsequent reads only probe the tail.
            yield from handles["host1"].read(lambda s: s["value"])
            start = env.now
            yield from handles["host1"].read(lambda s: s["value"])
            return env.now - start

        latency = run(env, go())
        # One remote tail probe + one local line: ~1.7us, far below
        # replaying or remote-accessing a whole structure.
        assert latency < 2 * 1700

    def test_read_mostly_beats_direct_remote(self):
        """The NR trade: N-op read burst vs N direct remote reads."""
        env = Environment()
        cluster, nr, handles = make(env)
        host1 = cluster.hosts["host1"]
        base = host1.remote_base("fam0")

        def go():
            yield from handles["host0"].write(1)
            yield from handles["host1"].read(lambda s: s["value"])
            # 20 replica reads (tail probe amortized to 1 line each).
            start = env.now
            for _ in range(20):
                yield from handles["host1"].read(lambda s: s["value"])
            replicated = env.now - start
            # 20 direct uncached remote reads of a shared structure.
            region = host1.address_map.resolve(base)
            start = env.now
            for _ in range(20):
                yield from region.backend(0x100000, 64, False)
                yield from region.backend(0x100040, 64, False)
            direct = env.now - start
            return replicated, direct

        replicated, direct = run(env, go())
        assert replicated < direct

    def test_log_capacity_enforced(self):
        env = Environment()
        cluster = build_cluster(env, ClusterSpec(hosts=1))
        uni = UniFabric(env, cluster)
        nr = NodeReplicatedObject(env, apply_counter, log_capacity=2)
        handle = nr.attach(uni.heap("host0"),
                           shared_tier="cpuless-numa")

        def go():
            yield from handle.write(1)
            yield from handle.write(1)
            yield from handle.write(1)   # third append overflows

        with pytest.raises(RuntimeError):
            run(env, go())

    def test_duplicate_attach_rejected(self):
        env = Environment()
        cluster = build_cluster(env, ClusterSpec(hosts=1))
        uni = UniFabric(env, cluster)
        nr = NodeReplicatedObject(env, apply_counter)
        nr.attach(uni.heap("host0"), shared_tier="cpuless-numa")
        with pytest.raises(ValueError):
            nr.attach(uni.heap("host0"), shared_tier="cpuless-numa")

    def test_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            NodeReplicatedObject(env, apply_counter, log_capacity=0)
