"""Bit-identity pins for the descriptor migration of the scenarios.

The hand-wired t2 and interleave builders were replaced by committed
descriptor shapes compiled through :func:`repro.topo.compile_topology`.
These tests keep verbatim copies of the *legacy* wiring code and assert
the migrated scenarios produce byte-identical output documents —
summary, Chrome trace, metrics snapshot, and the ``repro why``
attribution report — so the migration is provably a pure refactor.

The starvation scenario never had a fabric topology (it exercises a
bare :class:`CreditDomain`), so there was nothing to migrate; its pin
is a run-twice determinism check.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro import params
from repro.fabric import Channel, Packet, PacketKind
from repro.infra.chassis import FamChassis
from repro.infra.host import HostServer
from repro.mem.dram import DramDevice
from repro.mem.nodes import CpulessExpander
from repro.pcie import FabricManager, PortRole, Topology
from repro.sim import Environment, run_proc
from repro.telemetry.core import span
from repro.telemetry.scenarios import (
    TELEMETRY_SCENARIOS,
    run_scenario_build,
)


# --------------------------------------------------------------------------
# Legacy builders: verbatim copies of the pre-descriptor wiring
# --------------------------------------------------------------------------


def _legacy_build_t2(env: Environment) -> Dict[str, Any]:
    # Pre-descriptor build_cluster(ClusterSpec(hosts=1)), inlined.
    topology = Topology(env, link_params=None, scheduler="fair")
    topology.add_switch("sw0")
    topology.add_endpoint("host0")
    host_port = topology.connect_endpoint(
        "sw0", "host0", role=PortRole.UPSTREAM, control_lane=False)
    host = HostServer(env, "host0", host_port, local_bytes=1 << 30,
                      cores=1, cache_configs=None)
    topology.add_endpoint("fam0")
    fam_port = topology.connect_endpoint("sw0", "fam0",
                                         control_lane=False)
    media = DramDevice(env, name="fam0.mod0.media")
    module = CpulessExpander(env, 1 << 30, media=media,
                             read_extra_ns=params.FAM_MEDIA_READ_NS,
                             write_extra_ns=params.FAM_MEDIA_WRITE_NS,
                             name="fam0.mod0")
    fam = FamChassis(env, fam_port, [module], name="fam0")
    FabricManager(topology).configure()
    host.map_remote("fam0", topology.endpoints["fam0"].global_id,
                    fam.capacity_bytes)

    remote_base = host.remote_base("fam0")
    hot_line = 1 << 20
    mean_ns: Dict[str, float] = {}

    def level(label: str, addrs, is_write: bool):
        with span(env, "t2.level", track="t2", level=label,
                  accesses=len(addrs)):
            start = env.now
            for addr in addrs:
                yield from host.mem.access(addr, is_write)
            mean_ns[label] = round((env.now - start) / len(addrs), 3)

    l2_lines = [(3 << 20) + i * 64 for i in range(1024)]

    def walk():
        yield from host.mem.access(hot_line, False)
        yield from level("l1", [hot_line] * 32, False)
        with span(env, "t2.warm", track="t2", lines=len(l2_lines)):
            for addr in l2_lines:
                yield from host.mem.access(addr, False)
        yield from level("l2", l2_lines[:256], False)
        yield from level("local",
                         [(2 << 20) + i * 4096 for i in range(32)], False)
        yield from level("remote",
                         [remote_base + i * 4096 for i in range(32)],
                         False)

    run_proc(env, walk())
    return {"mean_ns": mean_ns,
            "remote_vs_local":
                round(mean_ns["remote"] / mean_ns["local"], 2)}


def _legacy_build_interleave(env: Environment) -> Dict[str, Any]:
    topo = Topology(env, scheduler="fifo")
    topo.add_switch("sw0")
    for name in ("reader", "writer"):
        topo.add_endpoint(name)
        topo.connect_endpoint("sw0", name, role=PortRole.UPSTREAM)
    topo.add_endpoint("dev")
    topo.connect_endpoint("sw0", "dev",
                          link_params=params.LinkParams(lanes=4))
    FabricManager(topo).configure()

    def handler(request):
        yield env.timeout(params.FAM_ACCESS_NS)
        if request.kind is PacketKind.IO_WR:
            return None
        return request.make_response()

    topo.port_of("dev").serve(handler, concurrency=8)
    dst = topo.endpoints["dev"].global_id
    read_ns = []

    def reader():
        port = topo.port_of("reader")
        for _ in range(24):
            packet = Packet(kind=PacketKind.MEM_RD,
                            channel=Channel.CXL_MEM,
                            src=port.port_id, dst=dst, nbytes=64)
            with span(env, "interleave.read64", track="app.reader"):
                start = env.now
                yield from port.request(packet)
                read_ns.append(env.now - start)
            yield env.timeout(300.0)

    def writer():
        port = topo.port_of("writer")
        for _ in range(48):
            packet = Packet(kind=PacketKind.IO_WR,
                            channel=Channel.CXL_IO,
                            src=port.port_id, dst=dst, nbytes=16 * 1024)
            with span(env, "interleave.write16k", track="app.writer"):
                yield from port.post(packet)

    procs = [env.process(reader()), env.process(writer())]

    def wait():
        yield env.all_of(procs)

    run_proc(env, wait())
    return {"reads": len(read_ns),
            "read64_mean_ns": round(sum(read_ns) / len(read_ns), 1),
            "read64_max_ns": round(max(read_ns), 1)}


# --------------------------------------------------------------------------
# The pins
# --------------------------------------------------------------------------


def _documents(name, build) -> Dict[str, str]:
    """Every output document of one scenario run, as canonical JSON."""
    result = run_scenario_build(name, build, causal=True)
    return {
        "summary": json.dumps(result.summary, sort_keys=True),
        "chrome_trace": json.dumps(result.chrome_trace(),
                                   sort_keys=True),
        "metrics": json.dumps(result.metrics_snapshot(),
                              sort_keys=True),
        "attribution": json.dumps(result.attribution_report(),
                                  sort_keys=True),
    }


def _assert_identical(name, legacy_build):
    migrated = _documents(name, TELEMETRY_SCENARIOS[name])
    legacy = _documents(name, legacy_build)
    for document in ("summary", "chrome_trace", "metrics",
                     "attribution"):
        assert migrated[document] == legacy[document], \
            f"{name}: {document} diverged from the hand-wired builder"


def test_t2_scenario_bit_identical_to_hand_wired_builder():
    _assert_identical("t2", _legacy_build_t2)


def test_interleave_scenario_bit_identical_to_hand_wired_builder():
    _assert_identical("interleave", _legacy_build_interleave)


def test_starvation_scenario_is_run_stable():
    # No fabric topology to migrate; pin determinism run-to-run.
    one = _documents("starvation", TELEMETRY_SCENARIOS["starvation"])
    two = _documents("starvation", TELEMETRY_SCENARIOS["starvation"])
    assert one == two
