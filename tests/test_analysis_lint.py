"""Tests for the fcc-check static lint (repro.analysis)."""

import json
from pathlib import Path

import pytest

from repro.analysis import run_lint, violations_to_json
from repro.analysis.lint import default_lint_root, default_lint_roots
from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures" / "lint"

RULE_FIXTURES = [
    ("FCC001", "bad_rng.py"),
    ("FCC002", "bad_wallclock.py"),
    ("FCC003", "bad_generator_return.py"),
    ("FCC004", "bad_mutable.py"),
    ("FCC005", "bad_unordered.py"),
    ("FCC006", "bad_eager_format.py"),
    ("FCC007", "bad_span_leak.py"),
]


class TestRuleFixtures:
    @pytest.mark.parametrize("code,fixture", RULE_FIXTURES)
    def test_fixture_trips_exactly_its_rule(self, code, fixture):
        violations = run_lint([FIXTURES / fixture])
        assert violations, f"{fixture} should trip {code}"
        assert {v.code for v in violations} == {code}

    def test_clean_fixture_is_clean(self):
        assert run_lint([FIXTURES / "clean.py"]) == []

    def test_directory_lint_finds_every_rule(self):
        codes = {v.code for v in run_lint([FIXTURES])}
        assert codes == {code for code, _ in RULE_FIXTURES}

    def test_violations_sorted_and_carry_location(self):
        violations = run_lint([FIXTURES])
        assert violations == sorted(
            violations, key=lambda v: (v.path, v.line, v.col, v.code))
        for violation in violations:
            assert violation.line >= 1
            assert violation.code.startswith("FCC")
            assert violation.rule
            assert violation.message

    def test_syntax_error_reported_not_raised(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        violations = run_lint([bad])
        assert [v.code for v in violations] == ["FCC000"]


class TestPragmas:
    def test_pragma_suppresses_by_slug(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text("import random   # fcc: allow[seeded-rng]\n")
        assert run_lint([mod]) == []

    def test_pragma_suppresses_by_code(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text("import random   # fcc: allow[FCC001]\n")
        assert run_lint([mod]) == []

    def test_bare_pragma_suppresses_everything_on_line(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text("import random   # fcc: allow\n")
        assert run_lint([mod]) == []

    def test_pragma_on_other_line_does_not_suppress(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text("# fcc: allow[seeded-rng]\nimport random\n")
        violations = run_lint([mod])
        assert [v.code for v in violations] == ["FCC001"]

    def test_wrong_slug_does_not_suppress(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text("import random   # fcc: allow[wall-clock]\n")
        assert [v.code for v in run_lint([mod])] == ["FCC001"]

    # A violation anchored to a multi-line statement is reported at
    # its *first* line, but editors naturally put the pragma where the
    # cursor is — often the closing line.  Suppression must honor any
    # line of the statement's span.
    def test_pragma_on_closing_line_of_multiline_statement(
            self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text("def drain(pending):\n"
                       "    for name in set(\n"
                       "        pending,\n"
                       "    ):   # fcc: allow[unordered-iter]\n"
                       "        print(name)\n")
        assert run_lint([mod]) == []

    def test_pragma_on_middle_line_of_multiline_statement(
            self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text("def drain(pending):\n"
                       "    for name in set(\n"
                       "        pending,   # fcc: allow[unordered-iter]\n"
                       "    ):\n"
                       "        print(name)\n")
        assert run_lint([mod]) == []

    def test_pragma_after_multiline_statement_does_not_suppress(
            self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text("def drain(pending):\n"
                       "    for name in set(\n"
                       "        pending,\n"
                       "    ):\n"
                       "        print(name)   # fcc: allow[unordered-iter]\n")
        assert [v.code for v in run_lint([mod])] == ["FCC005"]


class TestRepoIsClean:
    def test_repro_package_has_no_violations(self):
        violations = run_lint()
        assert violations == [], "\n".join(v.format() for v in violations)

    def test_default_root_is_the_package(self):
        assert default_lint_root().name == "repro"

    def test_default_roots_cover_tests_and_benchmarks(self):
        roots = default_lint_roots()
        names = {root.name for root in roots}
        assert "repro" in names
        assert "tests" in names
        assert "benchmarks" in names

    def test_fixture_dirs_skipped_in_directory_walks(self):
        # tests/fixtures holds deliberate violations; the default walk
        # must not lint them (explicitly-named paths still work).
        violations = run_lint([Path(__file__).parent])
        fixture_hits = [v for v in violations if "fixtures" in v.path]
        assert fixture_hits == []


class TestJsonSchema:
    def test_schema_stable_shape(self):
        payload = violations_to_json(run_lint([FIXTURES / "bad_rng.py"]))
        assert payload["schema"] == 1
        assert payload["tool"] == "fcc-check"
        assert payload["count"] == len(payload["violations"])
        assert payload["count"] > 0
        entry = payload["violations"][0]
        assert set(entry) == {"path", "line", "col", "code", "rule",
                              "message", "end_line"}
        assert entry["end_line"] >= entry["line"]
        json.dumps(payload)   # round-trippable

    def test_empty_payload(self):
        payload = violations_to_json([])
        assert payload == {"schema": 1, "tool": "fcc-check", "count": 0,
                           "violations": []}


class TestCheckCli:
    def test_lint_clean_repo_exits_zero(self, capsys):
        assert main(["check", "--lint"]) == 0
        assert "lint: clean" in capsys.readouterr().out

    def test_lint_fixture_exits_nonzero(self, capsys):
        assert main(["check", "--lint", str(FIXTURES / "bad_rng.py")]) == 1
        out = capsys.readouterr().out
        assert "FCC001" in out

    def test_lint_json_output(self, capsys):
        assert main(["check", "--lint", "--json",
                     str(FIXTURES / "bad_mutable.py")]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["tool"] == "fcc-check"
        assert all(v["code"] == "FCC004" for v in payload["violations"])

    def test_unknown_experiment_exits_two(self, capsys):
        assert main(["check", "--sanitize", "nope"]) == 2
