"""Tests for the passive-failure-domain reliability layer."""

import pytest

from repro.core import (
    CentralMemoryManager,
    ReliabilityError,
    ShardState,
)
from repro.infra import ClusterSpec, FamSpec, build_cluster
from repro.sim import Environment


def make_setup(chassis=3, spares=True):
    """Cluster with several FAM chassis + a manager over them."""
    env = Environment()
    fams = [FamSpec(name=f"fam{i}", capacity_bytes=1 << 26)
            for i in range(chassis)]
    cluster = build_cluster(env, ClusterSpec(hosts=1, fams=fams))
    host = cluster.host(0)
    manager = CentralMemoryManager(env)
    for i in range(chassis):
        base = host.remote_base(f"fam{i}")
        spare_bases = [base + (8 << 20)] if spares else []
        manager.register_chassis(f"fam{i}", spare_bases=spare_bases)
    return env, cluster, host, manager


def placements(host, names, offset=0):
    return [(name, host.remote_base(name) + offset) for name in names]


def run(env, gen, horizon=100_000_000_000):
    proc = env.process(gen)
    env.run(until=env.now + horizon, until_event=proc)
    assert proc.triggered
    if not proc.ok:
        raise proc.value
    return proc.value


class TestRegionCreation:
    def test_create_and_geometry(self):
        env, _, host, manager = make_setup()
        region = manager.create_region(
            host, "r0", placements(host, ["fam0", "fam1", "fam2"]),
            shard_bytes=64 * 1024, parity=1)
        assert region.size == 2 * 64 * 1024
        assert region.fault_tolerance == 1
        assert len(region.parity_shards) == 1

    def test_shards_must_be_on_distinct_chassis(self):
        env, _, host, manager = make_setup()
        base = host.remote_base("fam0")
        with pytest.raises(ReliabilityError):
            manager.create_region(
                host, "bad", [("fam0", base), ("fam0", base + (1 << 20))],
                shard_bytes=4096, parity=1)

    def test_parity_count_validated(self):
        env, _, host, manager = make_setup()
        with pytest.raises(ReliabilityError):
            manager.create_region(
                host, "bad", placements(host, ["fam0", "fam1"]),
                shard_bytes=4096, parity=2)

    def test_unknown_chassis_rejected(self):
        env, _, host, manager = make_setup()
        with pytest.raises(ReliabilityError):
            manager.create_region(host, "bad", [("ghost", 0)],
                                  shard_bytes=4096, parity=0)

    def test_duplicate_region_rejected(self):
        env, _, host, manager = make_setup()
        manager.create_region(host, "r0",
                              placements(host, ["fam0", "fam1"]),
                              shard_bytes=4096, parity=1)
        with pytest.raises(ValueError):
            manager.create_region(host, "r0",
                                  placements(host, ["fam1", "fam2"],
                                             offset=1 << 20),
                                  shard_bytes=4096, parity=1)


class TestHealthyPath:
    def test_read_write_roundtrip(self):
        env, _, host, manager = make_setup()
        region = manager.create_region(
            host, "r0", placements(host, ["fam0", "fam1", "fam2"]),
            shard_bytes=64 * 1024, parity=1)

        def go():
            yield from region.write(0x100)
            path = yield from region.read(0x100)
            return path

        assert run(env, go()) == "fast"
        assert region.reads == 1 and region.writes == 1
        assert region.degraded_reads == 0

    def test_write_touches_parity(self):
        """The write path must pay the parity RMW (frugal but real)."""
        env, _, host, manager = make_setup()
        plain = manager.create_region(
            host, "plain", placements(host, ["fam0"]),
            shard_bytes=64 * 1024, parity=0)
        coded = manager.create_region(
            host, "coded", placements(host, ["fam1", "fam2"],
                                      offset=1 << 20),
            shard_bytes=64 * 1024, parity=1)

        def go():
            start = env.now
            yield from plain.write(0x4000)
            unprotected = env.now - start
            start = env.now
            yield from coded.write(0x4000)
            protected = env.now - start
            return unprotected, protected

        unprotected, protected = run(env, go())
        assert protected > unprotected

    def test_bounds_checked(self):
        env, _, host, manager = make_setup()
        region = manager.create_region(
            host, "r0", placements(host, ["fam0", "fam1"]),
            shard_bytes=4096, parity=1)

        def go():
            yield from region.read(4096)   # beyond single data shard

        with pytest.raises(ReliabilityError):
            run(env, go())


class TestFailureAndRecovery:
    def _region(self, spares=True):
        env, cluster, host, manager = make_setup(chassis=4,
                                                 spares=spares)
        region = manager.create_region(
            host, "r0", placements(host, ["fam0", "fam1", "fam2"]),
            shard_bytes=16 * 1024, parity=1)
        return env, host, manager, region

    def test_failure_marks_shards_lost(self):
        env, _, manager, region = self._region()
        affected = manager.chassis_failed("fam0")
        assert affected == ["r0"]
        assert len(region.lost_shards()) == 1
        assert "fam0" not in manager.healthy_chassis()

    def test_degraded_read_survives_single_failure(self):
        env, host, manager, region = self._region()

        def go():
            yield from region.write(0x100)
            manager.chassis_failed("fam0")   # loses data shard 0
            path = yield from region.read(0x100)
            return path

        assert run(env, go()) == "degraded"
        assert region.degraded_reads == 1

    def test_degraded_read_is_slower(self):
        env, host, manager, region = self._region()

        def go():
            start = env.now
            yield from region.read(0x100)
            fast = env.now - start
            manager.chassis_failed("fam0")
            start = env.now
            yield from region.read(0x100)
            degraded = env.now - start
            return fast, degraded

        fast, degraded = run(env, go())
        assert degraded > fast

    def test_double_failure_exceeds_code(self):
        env, host, manager, region = self._region()
        manager.chassis_failed("fam0")
        manager.chassis_failed("fam1")

        def go():
            yield from region.read(0x100)

        with pytest.raises(ReliabilityError):
            run(env, go())

    def test_reconstruction_restores_fast_path(self):
        env, host, manager, region = self._region()

        def go():
            manager.chassis_failed("fam0")
            rebuilt = yield from manager.reconstruct("r0")
            path = yield from region.read(0x100)
            return rebuilt, path

        rebuilt, path = run(env, go())
        assert rebuilt == 1
        assert path == "fast"
        # The rebuilt shard moved to the spare chassis (fam3).
        chassis = {s.chassis for s in region.data_shards}
        assert "fam0" not in chassis
        assert all(s.state is ShardState.HEALTHY
                   for s in region.data_shards + region.parity_shards)

    def test_reconstruction_without_spares_fails(self):
        env, host, manager, region = self._region(spares=False)

        def go():
            manager.chassis_failed("fam0")
            yield from manager.reconstruct("r0")

        with pytest.raises(ReliabilityError):
            run(env, go())

    def test_describe(self):
        env, host, manager, region = self._region()
        manager.chassis_failed("fam0")
        text = manager.describe()
        assert "r0" in text and "lost" in text
