"""Tests for the declarative experiment layer (registry, spec, runner)."""

from __future__ import annotations

import pytest

from repro.experiments import (
    ExperimentError,
    ExperimentSpec,
    Param,
    RunContext,
    SpecError,
    UnknownExperimentError,
    registry,
    render,
    run_experiment,
    run_summary,
)


class TestRegistry:
    def test_names_cover_benches_and_scenarios(self):
        names = registry.names()
        assert "table2_hierarchy" in names
        assert "t2" in names
        assert registry.names(kind="scenario") == \
            ["interleave", "starvation", "t2"]
        assert len(names) >= 25

    def test_get_unknown_raises_with_choices(self):
        with pytest.raises(UnknownExperimentError) as err:
            registry.get("nope")
        assert "unknown experiment 'nope'" in str(err.value)
        assert "table2_hierarchy" in str(err.value)

    def test_get_kind_mismatch_raises(self):
        with pytest.raises(UnknownExperimentError) as err:
            registry.get("table2_hierarchy", kind="scenario")
        assert "unknown scenario" in str(err.value)

    def test_unknown_experiment_is_a_value_error(self):
        # Pre-registry callers catch ValueError; keep that contract.
        with pytest.raises(ValueError):
            registry.get("nope")

    def test_describe_rows_are_schema_stable(self):
        rows = registry.describe()
        assert [row["name"] for row in rows] == registry.names()
        for row in rows:
            assert row["kind"] in ("bench", "scenario")
            assert row["description"]
            assert "summary" in row["outputs"]
            for param in row["params"].values():
                assert set(param) == {"type", "default", "help"}


class TestParam:
    def test_int_widens_to_float(self):
        assert Param(float, 1.0).coerce("x", 3) == 3.0

    def test_bool_is_not_an_int(self):
        with pytest.raises(ExperimentError):
            Param(int, 1).coerce("x", True)

    def test_type_mismatch_names_the_parameter(self):
        with pytest.raises(ExperimentError) as err:
            Param(int, 1).coerce("hosts", "two")
        assert "'hosts'" in str(err.value)

    def test_parse_list_is_json(self):
        assert Param(list, []).parse("sizes", "[64, 4096]") == [64, 4096]

    def test_parse_bad_text_raises(self):
        with pytest.raises(ExperimentError):
            Param(int, 1).parse("hosts", "many")

    def test_resolve_params_rejects_unknown(self):
        defn = registry.get("flit_rtt")
        with pytest.raises(ExperimentError) as err:
            defn.resolve_params({"bogus": 1})
        assert "bogus" in str(err.value)
        assert "max_hops" in str(err.value)


class TestSpec:
    def test_from_dict_roundtrip(self):
        spec = ExperimentSpec.from_dict(
            {"experiment": "flit_rtt", "params": {"pings": 3},
             "seed": 7, "outputs": ["summary"]})
        assert spec.to_dict() == {"experiment": "flit_rtt",
                                  "params": {"pings": 3}, "seed": 7,
                                  "outputs": ["summary"]}

    def test_missing_experiment_rejected(self):
        with pytest.raises(SpecError):
            ExperimentSpec.from_dict({"params": {}})

    def test_unknown_key_rejected(self):
        with pytest.raises(SpecError):
            ExperimentSpec.from_dict({"experiment": "flit_rtt",
                                      "sweeps": {}})

    def test_bool_seed_rejected(self):
        with pytest.raises(SpecError):
            ExperimentSpec.from_dict({"experiment": "flit_rtt",
                                      "seed": True})

    def test_bench_cannot_produce_attribution(self):
        spec = ExperimentSpec(experiment="flit_rtt",
                              outputs=("summary", "attribution"))
        with pytest.raises(SpecError) as err:
            spec.resolve()
        assert "attribution" in str(err.value)

    def test_scenario_supports_all_outputs(self):
        spec = ExperimentSpec(experiment="t2",
                              outputs=("summary", "metrics",
                                       "attribution"))
        assert spec.resolve().kind == "scenario"


class TestRunner:
    def test_run_context_exposes_params(self):
        ctx = RunContext({"hosts": 4}, seed=9)
        assert ctx.hosts == 4
        assert ctx["hosts"] == 4
        assert ctx.seed == 9
        with pytest.raises(AttributeError):
            ctx.missing

    def test_result_document_shape(self):
        result = run_experiment(ExperimentSpec(
            experiment="flit_rtt", params={"max_hops": 1, "pings": 2}))
        assert result["schema"] == 1
        assert result["tool"] == "repro-experiments"
        assert result["experiment"] == "flit_rtt"
        assert result["params"] == {"max_hops": 1, "pings": 2}
        assert result["seed"] == 0
        assert list(result["outputs"]) == ["summary"]

    def test_run_summary_deterministic(self):
        first = run_summary("flit_rtt", max_hops=2, pings=2)
        second = run_summary("flit_rtt", max_hops=2, pings=2)
        assert first == second

    def test_scenario_outputs_follow_request(self):
        result = run_experiment(ExperimentSpec(
            experiment="t2", outputs=("summary", "metrics")))
        outputs = result["outputs"]
        assert set(outputs) == {"summary", "metrics"}
        assert outputs["metrics"]["count"] > 0

    def test_render_falls_back_to_json(self, capsys):
        # Scenario experiments have no table renderer.
        render("t2", summary={"k": 1})
        assert '"k": 1' in capsys.readouterr().out

    def test_run_scenario_still_raises_value_error(self):
        from repro.telemetry.scenarios import run_scenario
        with pytest.raises(ValueError) as err:
            run_scenario("nope")
        assert "unknown scenario 'nope'" in str(err.value)
        assert "t2" in str(err.value)
