"""Tests for the deterministic parallel sweep driver."""

from __future__ import annotations

import json

import pytest

from repro.experiments import (
    SpecError,
    SweepConflictError,
    load_sweep_spec,
    run_sweep,
    validate_sweep_report,
)
from repro.experiments.sweep import SweepSpec, point_seed

#: Small enough to run in seconds, large enough to exercise two axes.
SPEC = {"experiment": "flit_rtt",
        "sweep": {"max_hops": [1, 2]},
        "params": {"pings": 2},
        "seed": 3}


def _write_spec(tmp_path, raw):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(raw))
    return str(path)


class TestSweepSpec:
    def test_points_are_the_cartesian_product(self):
        sweep = SweepSpec.from_dict(
            {"experiment": "flit_rtt",
             "sweep": {"max_hops": [1, 2], "pings": [2, 3, 4]}})
        points = sweep.points()
        assert len(points) == 6
        combos = {(p.params["max_hops"], p.params["pings"])
                  for p in points}
        assert combos == {(h, p) for h in (1, 2) for p in (2, 3, 4)}

    def test_point_seeds_stable_and_distinct(self):
        # sha256-derived: stable across processes and Python versions
        # (never the process-randomized hash()).
        assert point_seed(3, 0) == point_seed(3, 0)
        seeds = {point_seed(3, index) for index in range(32)}
        assert len(seeds) == 32
        assert point_seed(3, 0) != point_seed(4, 0)

    def test_missing_sweep_key_rejected(self):
        with pytest.raises(SpecError):
            SweepSpec.from_dict({"experiment": "flit_rtt"})

    def test_empty_axis_rejected(self):
        with pytest.raises(SpecError):
            SweepSpec.from_dict({"experiment": "flit_rtt",
                                 "sweep": {"max_hops": []}})

    def test_axis_conflicting_with_base_param_rejected(self):
        with pytest.raises(SpecError):
            SweepSpec.from_dict({"experiment": "flit_rtt",
                                 "sweep": {"pings": [1, 2]},
                                 "params": {"pings": 3}})

    def test_unknown_experiment_rejected_up_front(self):
        with pytest.raises(ValueError):
            SweepSpec.from_dict({"experiment": "nope",
                                 "sweep": {"x": [1]}})

    def test_load_rejects_bad_json(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text("{not json")
        with pytest.raises(SpecError):
            load_sweep_spec(str(path))

    def test_fingerprint_tracks_content(self):
        one = SweepSpec.from_dict(SPEC)
        two = SweepSpec.from_dict(dict(SPEC, seed=4))
        assert one.fingerprint() == SweepSpec.from_dict(SPEC).fingerprint()
        assert one.fingerprint() != two.fingerprint()


class TestRunSweep:
    def test_serial_and_parallel_reports_identical(self, tmp_path):
        sweep = SweepSpec.from_dict(SPEC)
        run_sweep(sweep, str(tmp_path / "serial"), workers=1)
        run_sweep(sweep, str(tmp_path / "parallel"), workers=2)
        serial = (tmp_path / "serial" / "sweep.json").read_bytes()
        parallel = (tmp_path / "parallel" / "sweep.json").read_bytes()
        assert serial == parallel
        report = json.loads(serial)
        validate_sweep_report(report)
        hops = [p["params"]["max_hops"] for p in report["points"]]
        assert hops == [1, 2]
        for point in report["points"]:
            assert point["outputs"]["summary"]["rows"]

    def test_rerun_resumes_without_recomputing(self, tmp_path):
        sweep = SweepSpec.from_dict(SPEC)
        out = tmp_path / "sweep"
        first = run_sweep(sweep, str(out), workers=1)
        point_files = sorted((out / "points").glob("point-*.json"))
        assert len(point_files) == 2
        stamps = {p.name: p.stat().st_mtime_ns for p in point_files}
        lines = []
        second = run_sweep(sweep, str(out), workers=1,
                           progress=lines.append)
        assert second == first
        # Finished points were skipped, not atomically rewritten.
        for path in point_files:
            assert path.stat().st_mtime_ns == stamps[path.name]
        assert any("2 already done, 0 to run" in line for line in lines)

    def test_partial_directory_resumes_missing_points(self, tmp_path):
        sweep = SweepSpec.from_dict(SPEC)
        out = tmp_path / "sweep"
        full = run_sweep(sweep, str(out), workers=1)
        # Simulate a kill after point 0: drop point 1 and the report.
        (out / "points" / "point-0001.json").unlink()
        (out / "sweep.json").unlink()
        kept = (out / "points" / "point-0000.json")
        stamp = kept.stat().st_mtime_ns
        resumed = run_sweep(sweep, str(out), workers=1)
        assert resumed == full
        assert kept.stat().st_mtime_ns == stamp

    def test_corrupt_point_file_is_recomputed(self, tmp_path):
        sweep = SweepSpec.from_dict(SPEC)
        out = tmp_path / "sweep"
        full = run_sweep(sweep, str(out), workers=1)
        (out / "points" / "point-0000.json").write_text("{truncated")
        assert run_sweep(sweep, str(out), workers=1) == full

    def test_conflicting_out_dir_refused(self, tmp_path):
        out = tmp_path / "sweep"
        run_sweep(SweepSpec.from_dict(SPEC), str(out), workers=1)
        other = SweepSpec.from_dict(dict(SPEC, seed=4))
        with pytest.raises(SweepConflictError):
            run_sweep(other, str(out), workers=1)

    def test_report_validation_catches_drift(self, tmp_path):
        out = tmp_path / "sweep"
        report = run_sweep(SweepSpec.from_dict(SPEC), str(out),
                           workers=1)
        validate_sweep_report(report)
        broken = json.loads(json.dumps(report))
        del broken["points"][0]
        with pytest.raises(ValueError):
            validate_sweep_report(broken)


class TestSweepCli:
    def test_cli_runs_and_validates(self, tmp_path, capsys):
        from repro.cli import main
        spec = _write_spec(tmp_path, SPEC)
        out = tmp_path / "out"
        assert main(["sweep", spec, "--out", str(out),
                     "--workers", "1"]) == 0
        report = json.loads((out / "sweep.json").read_text())
        validate_sweep_report(report)
        stdout = capsys.readouterr().out
        assert "2 points" in stdout

    def test_cli_malformed_spec_exits_2(self, tmp_path, capsys):
        from repro.cli import main
        spec = _write_spec(tmp_path, {"experiment": "flit_rtt"})
        assert main(["sweep", spec, "--out",
                     str(tmp_path / "out")]) == 2
        assert "missing required key 'sweep'" in \
            capsys.readouterr().err

    def test_cli_conflicting_out_exits_2(self, tmp_path, capsys):
        from repro.cli import main
        out = str(tmp_path / "out")
        assert main(["sweep", _write_spec(tmp_path, SPEC),
                     "--out", out, "--workers", "1"]) == 0
        other = tmp_path / "other.json"
        other.write_text(json.dumps(dict(SPEC, seed=4)))
        assert main(["sweep", str(other), "--out", out]) == 2
        assert "fingerprint mismatch" in capsys.readouterr().err
