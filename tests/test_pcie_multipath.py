"""Tests for ECMP candidates and adaptive (load-aware) routing."""

import pytest

from repro import params
from repro.fabric import Channel, Packet, PacketKind
from repro.pcie import FabricManager, PbrId, PortRole, RoutingTable, Topology
from repro.sim import Environment


class TestEcmpTable:
    def test_candidates_accumulate(self):
        table = RoutingTable(switch_domain=0)
        dst = PbrId(0, 5)
        table.add_endpoint(dst, 1)
        table.add_endpoint(dst, 3)
        table.add_endpoint(dst, 1)   # duplicate ignored
        assert table.candidates(dst) == [1, 3]
        assert table.lookup(dst) == 1

    def test_candidates_raise_when_unrouted(self):
        table = RoutingTable(switch_domain=0)
        with pytest.raises(KeyError):
            table.candidates(PbrId(0, 1))


def diamond_topology(env, adaptive):
    """host -> sw_in -> {sw_up, sw_down} -> sw_out -> dev.

    Two equal-cost paths between sw_in and sw_out.
    """
    topo = Topology(env)
    for name in ("sw_in", "sw_up", "sw_down", "sw_out"):
        topo.add_switch(name)
        topo.switches[name].adaptive_routing = adaptive
    topo.connect_switches("sw_in", "sw_up")
    topo.connect_switches("sw_in", "sw_down")
    topo.connect_switches("sw_up", "sw_out")
    topo.connect_switches("sw_down", "sw_out")
    topo.add_endpoint("host")
    topo.connect_endpoint("sw_in", "host", role=PortRole.UPSTREAM)
    topo.add_endpoint("dev")
    topo.connect_endpoint("sw_out", "dev")
    FabricManager(topo).configure()
    dev = topo.port_of("dev")

    def echo(request):
        yield env.timeout(10.0)
        return request.make_response()

    dev.serve(echo, concurrency=8)
    return topo


class TestManagerInstallsEcmp:
    def test_diamond_has_two_candidates(self):
        env = Environment()
        topo = diamond_topology(env, adaptive=False)
        sw_in = topo.switches["sw_in"]
        dev = topo.endpoints["dev"]
        assert len(sw_in.table.candidates(dev.pbr)) == 2

    def test_single_path_has_one_candidate(self):
        env = Environment()
        topo = Topology(env)
        topo.add_switch("sw0")
        topo.add_endpoint("a")
        topo.connect_endpoint("sw0", "a")
        FabricManager(topo).configure()
        assert len(topo.switches["sw0"].table.candidates(
            topo.endpoints["a"].pbr)) == 1


class TestAdaptiveRouting:
    def _run_flood(self, adaptive):
        env = Environment()
        topo = diamond_topology(env, adaptive=adaptive)
        host = topo.port_of("host")
        dst = topo.endpoints["dev"].global_id

        def worker(count):
            for _ in range(count):
                packet = Packet(kind=PacketKind.MEM_WR,
                                channel=Channel.CXL_MEM,
                                src=host.port_id, dst=dst, nbytes=1024)
                yield from host.request(packet)

        procs = [env.process(worker(15)) for _ in range(8)]

        def wait():
            yield env.all_of(procs)

        done = env.process(wait())
        env.run(until=100_000_000, until_event=done)
        assert done.triggered and done.ok
        up = topo.switches["sw_up"].flits_forwarded
        down = topo.switches["sw_down"].flits_forwarded
        return env.now, up, down

    def test_deterministic_routing_uses_one_path(self):
        _, up, down = self._run_flood(adaptive=False)
        # Primary-only: the forward direction uses a single branch.
        assert min(up, down) < max(up, down) / 4

    def test_adaptive_routing_spreads_load(self):
        _, up, down = self._run_flood(adaptive=True)
        assert min(up, down) > max(up, down) / 3  # both paths busy

    def test_adaptive_is_not_slower_under_load(self):
        fixed_time, _, _ = self._run_flood(adaptive=False)
        adaptive_time, _, _ = self._run_flood(adaptive=True)
        assert adaptive_time <= fixed_time * 1.05

    def test_packets_arrive_intact_across_paths(self):
        env = Environment()
        topo = diamond_topology(env, adaptive=True)
        host = topo.port_of("host")
        dst = topo.endpoints["dev"].global_id
        responses = []

        def client(i):
            packet = Packet(kind=PacketKind.MEM_RD,
                            channel=Channel.CXL_MEM,
                            src=host.port_id, dst=dst, addr=i * 64,
                            nbytes=64)
            response = yield from host.request(packet)
            responses.append(response.addr)

        procs = [env.process(client(i)) for i in range(30)]

        def wait():
            yield env.all_of(procs)

        done = env.process(wait())
        env.run(until=100_000_000, until_event=done)
        assert sorted(responses) == [i * 64 for i in range(30)]
