"""Tests for the unified heap (DP#2), incl. allocator property tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import FreeList, HeapError, MovementOrchestrator, UnifiedHeap
from repro.core.heap import AccessProfiler, HeapRuntime
from repro.infra import ClusterSpec, build_cluster
from repro.sim import Environment


def make_heap(env, local_size=1 << 20, remote_size=1 << 20):
    cluster = build_cluster(env, ClusterSpec(hosts=1))
    host = cluster.host(0)
    orch = MovementOrchestrator(env)
    engine = orch.attach_host(host)
    heap = UnifiedHeap(env, host, engine)
    heap.add_bin("local", start=1 << 20, size=local_size, tier="local",
                 is_remote=False)
    base = host.remote_base("fam0")
    heap.add_bin("fam0", start=base, size=remote_size,
                 tier="cpuless-numa", is_remote=True)
    return cluster, host, heap


def run(env, gen, horizon=500_000_000):
    proc = env.process(gen)
    env.run(until=env.now + horizon)
    assert proc.triggered
    if not proc.ok:
        raise proc.value
    return proc.value


class TestFreeList:
    def test_allocate_and_free_roundtrip(self):
        fl = FreeList(0, 4096)
        addr = fl.allocate(100)
        assert addr == 0
        assert fl.allocated_bytes == 128  # rounded to cacheline
        fl.free(addr, 100)
        assert fl.free_bytes == 4096

    def test_first_fit_reuses_freed_block(self):
        fl = FreeList(0, 4096)
        a = fl.allocate(64)
        fl.allocate(64)
        fl.free(a, 64)
        assert fl.allocate(64) == a

    def test_exhaustion_raises(self):
        fl = FreeList(0, 128)
        fl.allocate(128)
        with pytest.raises(HeapError):
            fl.allocate(64)

    def test_coalescing_merges_neighbours(self):
        fl = FreeList(0, 4096)
        blocks = [fl.allocate(64) for _ in range(64)]
        for addr in blocks:
            fl.free(addr, 64)
        assert fl.largest_free_block() == 4096

    def test_double_free_detected(self):
        fl = FreeList(0, 4096)
        addr = fl.allocate(64)
        fl.free(addr, 64)
        with pytest.raises(HeapError):
            fl.free(addr, 64)

    def test_foreign_address_rejected(self):
        fl = FreeList(0x1000, 4096)
        with pytest.raises(HeapError):
            fl.free(0x100, 64)

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=512),
                    min_size=1, max_size=40))
    def test_property_alloc_free_all_restores_capacity(self, sizes):
        fl = FreeList(0, 64 * 1024)
        allocated = []
        for size in sizes:
            try:
                allocated.append((fl.allocate(size), size))
            except HeapError:
                break
        for addr, size in allocated:
            fl.free(addr, size)
        assert fl.free_bytes == 64 * 1024
        assert fl.largest_free_block() == 64 * 1024

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=256),
                    min_size=2, max_size=30))
    def test_property_no_overlapping_allocations(self, sizes):
        fl = FreeList(0, 32 * 1024)
        spans = []
        for size in sizes:
            try:
                addr = fl.allocate(size)
            except HeapError:
                break
            rounded = -(-size // 64) * 64
            for start, end in spans:
                assert not (addr < end and start < addr + rounded)
            spans.append((addr, addr + rounded))


class TestAllocation:
    def test_prefers_local_tier(self):
        env = Environment()
        _, _, heap = make_heap(env)
        pointer = heap.allocate(4096)
        assert pointer.tier == "local"

    def test_spills_to_remote_when_local_full(self):
        env = Environment()
        _, _, heap = make_heap(env, local_size=8192)
        first = heap.allocate(8192)
        second = heap.allocate(8192)
        assert first.tier == "local"
        assert second.tier == "cpuless-numa"

    def test_prefer_tier_hint(self):
        env = Environment()
        _, _, heap = make_heap(env)
        pointer = heap.allocate(4096, prefer_tier="cpuless-numa")
        assert pointer.tier == "cpuless-numa"

    def test_exhaustion_raises(self):
        env = Environment()
        _, _, heap = make_heap(env, local_size=8192, remote_size=8192)
        heap.allocate(8192)
        heap.allocate(8192)
        with pytest.raises(HeapError):
            heap.allocate(64)
        assert heap.failed_allocations == 1

    def test_free_makes_space(self):
        env = Environment()
        _, _, heap = make_heap(env, local_size=8192)
        pointer = heap.allocate(8192)
        heap.free(pointer)
        assert not pointer.valid
        replacement = heap.allocate(8192)
        assert replacement.tier == "local"

    def test_use_after_free_raises(self):
        env = Environment()
        _, _, heap = make_heap(env)
        pointer = heap.allocate(64)
        heap.free(pointer)

        def go():
            yield from pointer.read()

        with pytest.raises(HeapError):
            run(env, go())


class TestSmartPointerAccess:
    def test_remote_object_costs_more_than_local(self):
        env = Environment()
        _, _, heap = make_heap(env)
        local = heap.allocate(4096, prefer_tier="local")
        remote = heap.allocate(4096, prefer_tier="cpuless-numa")

        def go():
            start = env.now
            yield from local.read(0)
            local_cost = env.now - start
            start = env.now
            yield from remote.read(0)
            remote_cost = env.now - start
            return local_cost, remote_cost

        local_cost, remote_cost = run(env, go())
        assert remote_cost > 5 * local_cost

    def test_out_of_bounds_access_rejected(self):
        env = Environment()
        _, _, heap = make_heap(env)
        pointer = heap.allocate(128)

        def go():
            yield from pointer.read(offset=100, nbytes=64)

        with pytest.raises(HeapError):
            run(env, go())

    def test_access_records_temperature(self):
        env = Environment()
        _, _, heap = make_heap(env)
        pointer = heap.allocate(64)

        def go():
            for _ in range(5):
                yield from pointer.read()
            # Read immediately: the decay loop keeps cooling afterwards.
            return heap.profiler.temperature(pointer.oid)

        temperature = run(env, go())
        # Five accesses, minus whatever the decay epochs cooled off.
        assert temperature > 1.0


class TestMigration:
    def test_migrate_moves_object_and_pointer_follows(self):
        env = Environment()
        _, _, heap = make_heap(env)
        pointer = heap.allocate(4096, prefer_tier="cpuless-numa")

        def go():
            moved = yield from heap.migrate(pointer.oid,
                                            heap.bins["local"])
            assert moved
            start = env.now
            yield from pointer.read()
            return env.now - start

        latency = run(env, go())
        assert pointer.tier == "local"
        # A fresh local access is far below the remote 1575ns even cold.
        assert latency < 300

    def test_pinned_object_never_migrates(self):
        env = Environment()
        _, _, heap = make_heap(env)
        pointer = heap.allocate(64, prefer_tier="cpuless-numa",
                                pinned=True)

        def go():
            moved = yield from heap.migrate(pointer.oid,
                                            heap.bins["local"])
            return moved

        assert run(env, go()) is False

    def test_migrate_to_full_bin_fails_gracefully(self):
        env = Environment()
        _, _, heap = make_heap(env, local_size=8192)
        heap.allocate(8192, prefer_tier="local")
        remote = heap.allocate(8192, prefer_tier="cpuless-numa")

        def go():
            moved = yield from heap.migrate(remote.oid,
                                            heap.bins["local"])
            return moved

        assert run(env, go()) is False


class TestProfilerDecay:
    def test_temperature_decays_over_time(self):
        env = Environment()
        profiler = AccessProfiler(env, epoch_ns=1_000.0, decay=0.5)
        profiler.record(7, weight=8.0)
        env.run(until=3_500)
        assert profiler.temperature(7) == pytest.approx(1.0)

    def test_cold_entries_garbage_collected(self):
        env = Environment()
        profiler = AccessProfiler(env, epoch_ns=100.0, decay=0.1)
        profiler.record(7)
        env.run(until=1_000)
        assert profiler.temperature(7) == 0.0

    def test_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            AccessProfiler(env, decay=1.5)


class TestHeapRuntime:
    def test_hot_remote_object_promoted(self):
        env = Environment()
        _, _, heap = make_heap(env)
        runtime = HeapRuntime(env, heap, local_bin="local",
                              interval_ns=5_000.0, promote_threshold=4.0)
        runtime.start()
        hot = heap.allocate(4096, prefer_tier="cpuless-numa")

        def go():
            for _ in range(100):
                yield from hot.read()
                yield env.timeout(500.0)

        run(env, go())
        assert hot.tier == "local"
        assert runtime.promotions >= 1

    def test_cold_objects_demoted_to_make_room(self):
        env = Environment()
        _, _, heap = make_heap(env, local_size=8192)
        runtime = HeapRuntime(env, heap, local_bin="local",
                              interval_ns=5_000.0,
                              promote_threshold=4.0,
                              demote_threshold=1.0)
        runtime.start()
        cold = heap.allocate(8192, prefer_tier="local")   # fills local
        hot = heap.allocate(4096, prefer_tier="cpuless-numa")

        def go():
            for _ in range(200):
                yield from hot.read()
                yield env.timeout(300.0)

        run(env, go())
        assert hot.tier == "local"
        assert cold.tier == "cpuless-numa"
        assert runtime.demotions >= 1

    def test_threshold_validation(self):
        env = Environment()
        _, _, heap = make_heap(env)
        with pytest.raises(ValueError):
            HeapRuntime(env, heap, local_bin="local",
                        promote_threshold=1.0, demote_threshold=2.0)
