"""Tests for repro.telemetry.health: windowed series, SLO burn-rate
alerting, anomaly detection, the `repro health` report schema, the
dashboard, and the streaming layer's bit-identity guarantee."""

from __future__ import annotations

import json

import pytest

from repro.sim import Environment
from repro.telemetry import (
    CausalRecorder,
    HealthError,
    HealthMonitor,
    SloSpec,
    Telemetry,
    TimelineSampler,
    default_slo_spec,
    render_dashboard,
    run_health,
    validate_health_report,
)
from repro.telemetry.attribution import collect_transactions
from repro.telemetry.causal import CATEGORIES
from repro.telemetry.scenarios import run_scenario, starvation_build

#: The golden-pinned §3 C5 alert edge: quiet flow bursts at 12,000 ns,
#: the first whole window containing its stall closes at 14,000 ns.
ALERT_FIRES_AT_NS = 14_000.0


@pytest.fixture(scope="module")
def starvation_health():
    return run_health("starvation")


@pytest.fixture(scope="module")
def starvation_report(starvation_health):
    return starvation_health[1]


class TestSloSpec:
    def test_default_starvation_spec_parses(self):
        spec = SloSpec(default_slo_spec("starvation"))
        assert [slo.name for slo in spec.slos] == ["quiet_route_stall"]
        assert spec.slos[0].budget == pytest.approx(0.10)
        assert [rule.name for rule in spec.anomalies] == ["stall_spike"]

    def test_other_scenarios_default_to_windows_only(self):
        spec = SloSpec(default_slo_spec("t2"))
        assert spec.slos == [] and spec.anomalies == []

    def test_unknown_objective_kind_rejected(self):
        with pytest.raises(HealthError, match="attribution_share"):
            SloSpec({"slos": [{"name": "x", "target": 0.9,
                               "objective": {"kind": "vibes"}}]})

    def test_unknown_category_rejected_with_choices(self):
        with pytest.raises(HealthError, match="credit_stall"):
            SloSpec({"slos": [{
                "name": "x", "target": 0.9,
                "objective": {"kind": "attribution_share",
                              "route": "r", "category": "luck"}}]})

    def test_target_must_leave_a_budget(self):
        for bad in (0.0, 1.0, 2.0):
            with pytest.raises(HealthError, match="target"):
                SloSpec({"slos": [{
                    "name": "x", "target": bad,
                    "objective": {"kind": "counter_ratio",
                                  "bad": "a", "total": "b"}}]})

    def test_alert_windows_ordering_enforced(self):
        with pytest.raises(HealthError, match="short_windows"):
            SloSpec({"slos": [{
                "name": "x", "target": 0.9,
                "objective": {"kind": "counter_ratio",
                              "bad": "a", "total": "b"},
                "alerts": [{"name": "r", "burn_rate": 2.0,
                            "long_windows": 1, "short_windows": 3}]}]})

    def test_duplicate_slo_names_rejected(self):
        objective = {"kind": "counter_ratio", "bad": "a", "total": "b"}
        with pytest.raises(HealthError, match="duplicate"):
            SloSpec({"slos": [
                {"name": "x", "target": 0.9, "objective": objective},
                {"name": "x", "target": 0.8, "objective": objective}]})

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(default_slo_spec("starvation")))
        spec = SloSpec.load(path)
        assert spec.slos[0].name == "quiet_route_stall"
        with pytest.raises(HealthError, match="cannot read"):
            SloSpec.load(tmp_path / "missing.json")
        (tmp_path / "garbage.json").write_text("{nope")
        with pytest.raises(HealthError, match="not JSON"):
            SloSpec.load(tmp_path / "garbage.json")


class TestSloSpecErrorPaths:
    """Errors carry the exact JSON path, topo-loader style."""

    def test_unknown_kind_names_the_objective_path(self):
        with pytest.raises(
                HealthError,
                match=r"slos\[0\]\.objective\.kind: unknown objective "
                      r"kind 'vibes'"):
            SloSpec({"slos": [{"name": "x", "target": 0.9,
                               "objective": {"kind": "vibes"}}]})

    def test_missing_target_names_the_slo_path(self):
        with pytest.raises(
                HealthError,
                match=r"slos\[0\]\.target: slo 'x' needs a numeric "
                      r"'target'"):
            SloSpec({"slos": [{
                "name": "x",
                "objective": {"kind": "counter_ratio",
                              "bad": "a", "total": "b"}}]})

    def test_missing_objective_field_names_kind_and_path(self):
        with pytest.raises(
                HealthError,
                match=r"slos\[0\]\.objective\.route: required by "
                      r"objective kind 'attribution_share'"):
            SloSpec({"slos": [{
                "name": "x", "target": 0.9,
                "objective": {"kind": "attribution_share",
                              "category": "credit_stall"}}]})

    def test_malformed_burn_rate_names_the_alert_path(self):
        with pytest.raises(
                HealthError,
                match=r"slos\[0\]\.alerts\[0\]\.burn_rate: must be "
                      r"> 0, got -1\.0"):
            SloSpec({"slos": [{
                "name": "x", "target": 0.9,
                "objective": {"kind": "counter_ratio",
                              "bad": "a", "total": "b"},
                "alerts": [{"name": "r", "burn_rate": -1.0}]}]})

    def test_second_slo_gets_its_own_index(self):
        good = {"name": "ok", "target": 0.9,
                "objective": {"kind": "counter_ratio",
                              "bad": "a", "total": "b"}}
        with pytest.raises(HealthError, match=r"slos\[1\]\.target"):
            SloSpec({"slos": [good, {
                "name": "bad", "target": 5.0,
                "objective": {"kind": "counter_ratio",
                              "bad": "a", "total": "b"}}]})

    def test_anomaly_alpha_out_of_range_names_its_path(self):
        with pytest.raises(
                HealthError,
                match=r"anomaly\[0\]\.alpha: must be in \(0, 1\], "
                      r"got 9\.0"):
            SloSpec({"anomaly": [{
                "name": "a",
                "series": {"kind": "counter_delta", "metric": "m"},
                "alpha": 9.0}]})


class TestMonitorWiring:
    def test_needs_a_causal_recorder(self):
        with pytest.raises(ValueError, match="causal"):
            HealthMonitor(Telemetry(), scenario="t2")

    def test_window_must_be_interval_multiple(self):
        with pytest.raises(HealthError, match="multiple"):
            run_health("starvation", window_ns=1_500.0,
                       interval_ns=1_000.0)

    def test_policy_knob_is_starvation_only(self):
        with pytest.raises(HealthError, match="starvation"):
            run_health("t2", policy="fair")
        with pytest.raises(ValueError, match="rampup"):
            starvation_build("greedy")

    def test_windows_tile_sim_time(self, starvation_report):
        windows = starvation_report["windows"]
        assert len(windows) >= 2
        for i, window in enumerate(windows):
            assert window["index"] == i
            assert window["t0"] == i * 2_000.0
        assert all(not w["final"] for w in windows[:-1])

    def test_counter_deltas_sum_to_cumulative(self, starvation_health):
        result, report = starvation_health
        stalls = report["series"]["counters"]["credits.egress0.stalls"]
        total = result.telemetry.registry.get(
            "credits.egress0.stalls").value
        assert sum(stalls) == total
        assert total > 0

    def test_subscriber_sees_every_window(self):
        telemetry = Telemetry(causal=CausalRecorder())
        monitor = HealthMonitor(telemetry, scenario="starvation",
                                window_ns=2_000.0)
        seen = []
        monitor.subscribe(lambda window: seen.append(window["index"]))
        env = Environment(telemetry=telemetry)
        TimelineSampler(env, interval_ns=1_000.0).start()
        starvation_build("rampup")(env)
        monitor.finalize(env.now)
        assert seen == [w["index"] for w in monitor.windows]
        assert len(seen) >= 2

    def test_finalize_is_idempotent(self):
        telemetry = Telemetry(causal=CausalRecorder())
        monitor = HealthMonitor(telemetry, scenario="t2",
                                window_ns=2_000.0)
        env = Environment(telemetry=telemetry)
        monitor.finalize(env.now + 100.0)
        count = len(monitor.windows)
        monitor.finalize(env.now + 100.0)
        assert len(monitor.windows) == count


class TestStarvationAlert:
    def test_alert_fires_at_the_pinned_sim_time(self,
                                                starvation_report):
        slo = starvation_report["slos"][0]
        assert slo["name"] == "quiet_route_stall"
        episodes = slo["alerts"][0]["episodes"]
        assert [e["fired_at"] for e in episodes] == [ALERT_FIRES_AT_NS]
        assert slo["alerts"][0]["active"] is True

    def test_burn_rate_exceeds_the_rule_before_firing(
            self, starvation_report):
        slo = starvation_report["slos"][0]
        fired_index = next(
            i for i, w in enumerate(starvation_report["windows"])
            if w["t1"] == ALERT_FIRES_AT_NS)
        assert slo["burn"][fired_index] >= 4.0
        # Before the quiet burst there is no quiet-route data at all.
        assert all(b is None for b in slo["burn"][:fired_index])

    def test_fair_policy_stays_quiet(self):
        result, report = run_health("starvation", policy="fair")
        assert all(not alert["episodes"]
                   for slo in report["slos"]
                   for alert in slo["alerts"])
        assert all(not rule["points"]
                   for rule in report["anomalies"])
        assert result.summary["quiet_stall_ns"] == 0.0

    def test_anomaly_flags_the_stall_spike(self, starvation_report):
        points = starvation_report["anomalies"][0]["points"]
        assert points, "EWMA detector missed the burst"
        assert all(p["t"] >= 12_000.0 for p in points)


class TestBitIdentity:
    def test_health_run_matches_plain_telemetry_run(self):
        plain = run_scenario("starvation", telemetry=True)
        causal = run_scenario("starvation", telemetry=True, causal=True)
        health, _report = run_health("starvation")
        assert health.env.stats["events_processed"] \
            == plain.env.stats["events_processed"] \
            == causal.env.stats["events_processed"]
        assert health.summary == plain.summary == causal.summary

    def test_streamed_attribution_equals_offline(self):
        result, report = run_health("starvation")
        offline = {}
        for trace in collect_transactions(result.causal):
            route = offline.setdefault(
                trace.route, {c: 0.0 for c in CATEGORIES})
            for category, ns in trace.attribution().items():
                route[category] += ns
        routes = report["attribution"]["routes"]
        assert set(routes) == set(offline)
        for name, categories in offline.items():
            for category in CATEGORIES:
                streamed = sum(routes[name]["ns"][category])
                assert streamed == pytest.approx(
                    categories[category], abs=1e-3)


class TestReportSchema:
    def test_validator_accepts_all_scenarios(self, starvation_report):
        assert validate_health_report(starvation_report) >= 2
        for scenario in ("t2", "interleave"):
            _result, report = run_health(scenario)
            assert validate_health_report(report) >= 1

    def test_report_is_json_and_deterministic(self):
        first = json.dumps(run_health("starvation")[1], sort_keys=True)
        second = json.dumps(run_health("starvation")[1], sort_keys=True)
        assert first == second

    def test_validator_rejects_mutations(self, starvation_report):
        payload = json.loads(json.dumps(starvation_report))
        payload["windows"][0]["index"] = 7
        with pytest.raises(HealthError, match="out of order"):
            validate_health_report(payload)
        payload = json.loads(json.dumps(starvation_report))
        payload["series"]["counters"]["credits.egress0.stalls"].pop()
        with pytest.raises(HealthError, match="points"):
            validate_health_report(payload)
        payload = json.loads(json.dumps(starvation_report))
        payload["slos"][0]["alerts"][0]["episodes"][0]["fired_at"] = 13.0
        with pytest.raises(HealthError, match="window edge"):
            validate_health_report(payload)
        payload = json.loads(json.dumps(starvation_report))
        del payload["trace"]
        with pytest.raises(HealthError, match="trace"):
            validate_health_report(payload)

    def test_latency_objective_reads_port_histograms(self):
        spec = SloSpec({"slos": [{
            "name": "read_latency", "target": 0.5,
            "objective": {"kind": "latency",
                          "metric": "port.reader.request_ns",
                          "threshold_ns": 4_096.0},
            "alerts": [{"name": "slow", "burn_rate": 1.0}]}]})
        _result, report = run_health("interleave", spec=spec)
        slo = report["slos"][0]
        assert any(value is not None for value in slo["sli"])
        validate_health_report(report)

    def test_unknown_metric_in_objective_lists_registry(self):
        spec = SloSpec({"slos": [{
            "name": "x", "target": 0.9,
            "objective": {"kind": "counter_ratio",
                          "bad": "credits.egress0.stallz",
                          "total": "credits.egress0.stalls"}}]})
        with pytest.raises(HealthError,
                           match="credits.egress0.stalls"):
            run_health("starvation", spec=spec)


class TestDashboard:
    def test_dashboard_is_self_contained(self, starvation_report):
        page = render_dashboard(starvation_report)
        assert page.startswith("<!DOCTYPE html>")
        for forbidden in ("http://", "https://", "@import", "url("):
            assert forbidden not in page
        # Alert state ships as icon + label, never color alone.
        assert "FIRED".lower() in page.lower() or "fired at" in page
        assert "&#9650;" in page
        assert "prefers-color-scheme: dark" in page

    def test_dashboard_renders_quiet_run_without_alerts(self):
        _result, report = run_health("starvation", policy="fair")
        page = render_dashboard(report)
        assert "no alerts fired" in page
        assert "windows table" in page


class TestSweepDeterminism:
    def test_health_experiment_sweep_identical_at_any_worker_count(
            self, tmp_path):
        # Satellite: the fabric_health experiment through the sweep
        # driver — merged report byte-identical at 1 vs 2 workers.
        from repro.experiments import run_sweep
        from repro.experiments.sweep import SweepSpec
        spec = SweepSpec.from_dict(
            {"experiment": "fabric_health",
             "sweep": {"window_ns": [2_000.0, 4_000.0]},
             "seed": 1})
        run_sweep(spec, str(tmp_path / "serial"), workers=1)
        run_sweep(spec, str(tmp_path / "parallel"), workers=2)
        serial = (tmp_path / "serial" / "sweep.json").read_bytes()
        parallel = (tmp_path / "parallel" / "sweep.json").read_bytes()
        assert serial == parallel

    def test_pinned_edge_survives_a_window_resize(self):
        # 1000 ns windows move the close edge to 13,000 ns (the first
        # whole window after the burst) — the alert tracks window
        # geometry, not a hard-coded timestamp.
        _result, report = run_health("starvation", window_ns=1_000.0)
        episodes = report["slos"][0]["alerts"][0]["episodes"]
        assert episodes and episodes[0]["fired_at"] == 13_000.0
