"""Tests for the COMA attraction-memory cluster, incl. property tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mem import ComaCluster, ComaError
from repro.sim import Environment


def run(env, gen):
    proc = env.process(gen)
    env.run(until=100_000_000)
    assert proc.triggered
    if not proc.ok:
        raise proc.value
    return proc.value


class TestBasicAttraction:
    def test_cold_access_injects_locally(self):
        env = Environment()
        coma = ComaCluster(env, nodes=2, am_capacity_lines=8)

        def go():
            yield from coma.access(0, 0x100)

        run(env, go())
        assert coma.holders_of(0x100) == {0}
        assert coma.master_of(0x100) == 0
        assert coma.stats.cold_injections == 1

    def test_second_access_hits_locally(self):
        env = Environment()
        coma = ComaCluster(env, nodes=2, am_capacity_lines=8)

        def go():
            first = yield from coma.access(0, 0x100)
            second = yield from coma.access(0, 0x100)
            return first, second

        first, second = run(env, go())
        assert second < first
        assert coma.stats.hits == 1

    def test_remote_read_replicates(self):
        env = Environment()
        coma = ComaCluster(env, nodes=2, am_capacity_lines=8)

        def go():
            yield from coma.access(0, 0x100)
            yield from coma.access(1, 0x100)

        run(env, go())
        assert coma.holders_of(0x100) == {0, 1}
        assert coma.stats.replications == 1
        # Master stays at the original node after a read.
        assert coma.master_of(0x100) == 0

    def test_remote_write_migrates_and_invalidates(self):
        env = Environment()
        coma = ComaCluster(env, nodes=3, am_capacity_lines=8)

        def go():
            yield from coma.access(0, 0x100)
            yield from coma.access(1, 0x100)           # replicate
            yield from coma.access(2, 0x100, is_write=True)

        run(env, go())
        assert coma.holders_of(0x100) == {2}
        assert coma.master_of(0x100) == 2
        assert coma.stats.migrations == 1
        assert coma.stats.invalidations >= 2

    def test_write_hit_on_replica_takes_mastership(self):
        env = Environment()
        coma = ComaCluster(env, nodes=2, am_capacity_lines=8)

        def go():
            yield from coma.access(0, 0x100)
            yield from coma.access(1, 0x100)            # node 1 replica
            yield from coma.access(1, 0x100, is_write=True)

        run(env, go())
        assert coma.master_of(0x100) == 1
        assert coma.holders_of(0x100) == {1}


class TestLastCopyPreservation:
    def test_eviction_relocates_last_copy(self):
        env = Environment()
        coma = ComaCluster(env, nodes=2, am_capacity_lines=2)

        def go():
            # Fill node 0 beyond capacity with unique lines.
            for i in range(4):
                yield from coma.access(0, i * 64)

        run(env, go())
        # Every line must still exist somewhere in the cluster.
        for i in range(4):
            assert coma.holders_of(i * 64), f"line {i} lost"
        assert coma.stats.relocations >= 1
        coma.check_invariants()

    def test_cluster_full_raises(self):
        env = Environment()
        coma = ComaCluster(env, nodes=2, am_capacity_lines=2)

        def go():
            for i in range(5):  # 5 lines > 4 total slots
                yield from coma.access(0, i * 64)

        with pytest.raises(ComaError):
            run(env, go())

    def test_replica_eviction_promotes_master(self):
        env = Environment()
        coma = ComaCluster(env, nodes=2, am_capacity_lines=2)

        def go():
            yield from coma.access(0, 0x000)   # master at 0
            yield from coma.access(1, 0x000)   # replica at 1
            # Evict the master's copy by filling node 0.
            yield from coma.access(0, 0x040)
            yield from coma.access(0, 0x080)

        run(env, go())
        assert coma.holders_of(0x000) == {1}
        assert coma.master_of(0x000) == 1
        coma.check_invariants()


class TestValidation:
    def test_bad_node_count(self):
        env = Environment()
        with pytest.raises(ValueError):
            ComaCluster(env, nodes=0, am_capacity_lines=8)

    def test_bad_capacity(self):
        env = Environment()
        with pytest.raises(ValueError):
            ComaCluster(env, nodes=2, am_capacity_lines=1)

    def test_bad_node_index(self):
        env = Environment()
        coma = ComaCluster(env, nodes=2, am_capacity_lines=4)

        def go():
            yield from coma.access(5, 0)

        with pytest.raises(ValueError):
            run(env, go())


# -- property-based: invariants + no line ever lost ----------------------

coma_ops = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),   # node
        st.integers(min_value=0, max_value=5),   # line index
        st.booleans(),                            # is_write
    ),
    max_size=60,
)


@settings(max_examples=100, deadline=None)
@given(coma_ops)
def test_coma_invariants_and_no_loss(ops):
    env = Environment()
    # 3 nodes x 4 lines = 12 slots for <= 6 distinct lines: never full.
    coma = ComaCluster(env, nodes=3, am_capacity_lines=4)
    touched = set()

    def go():
        for node, line, is_write in ops:
            yield from coma.access(node, line * 64, is_write)
            touched.add(line * 64)

    proc = env.process(go())
    env.run(until=1_000_000_000)
    assert proc.ok, proc.value
    coma.check_invariants()
    for addr in touched:
        assert coma.holders_of(addr), f"line {addr:#x} lost"
        assert coma.master_of(addr) is not None
