"""Unit tests for queueing primitives."""

import pytest

from repro.sim import Container, Environment, PriorityResource, PriorityStore, Resource, Store


def test_resource_capacity_enforced():
    env = Environment()
    res = Resource(env, capacity=2)
    active = []
    peak = []

    def worker(tag):
        with res.request() as req:
            yield req
            active.append(tag)
            peak.append(len(res.users))
            yield env.timeout(10)
            active.remove(tag)

    for tag in range(5):
        env.process(worker(tag))
    env.run()
    assert max(peak) == 2
    assert active == []


def test_resource_fifo_order():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def worker(tag):
        with res.request() as req:
            yield req
            order.append(tag)
            yield env.timeout(1)

    for tag in range(4):
        env.process(worker(tag))
    env.run()
    assert order == [0, 1, 2, 3]


def test_resource_release_without_grant_cancels():
    env = Environment()
    res = Resource(env, capacity=1)

    def holder():
        with res.request() as req:
            yield req
            yield env.timeout(10)

    def quitter():
        req = res.request()
        yield env.timeout(1)
        res.release(req)  # never granted; should cancel cleanly

    def checker(times):
        with res.request() as req:
            yield req
            times.append(env.now)

    times = []
    env.process(holder())
    env.process(quitter())
    env.process(checker(times))
    env.run()
    assert times == [10]


def test_resource_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_priority_resource_orders_waiters():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def holder():
        with res.request() as req:
            yield req
            yield env.timeout(10)

    def worker(tag, priority):
        yield env.timeout(1)
        with res.request(priority=priority) as req:
            yield req
            order.append(tag)
            yield env.timeout(1)

    env.process(holder())
    env.process(worker("low", 5))
    env.process(worker("high", 0))
    env.process(worker("mid", 3))
    env.run()
    assert order == ["high", "mid", "low"]


def test_store_fifo():
    env = Environment()
    store = Store(env)
    received = []

    def producer():
        for i in range(3):
            yield store.put(i)
            yield env.timeout(1)

    def consumer():
        for _ in range(3):
            item = yield store.get()
            received.append(item)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert received == [0, 1, 2]


def test_store_bounded_blocks_producer():
    env = Environment()
    store = Store(env, capacity=1)
    times = []

    def producer():
        yield store.put("a")
        times.append(("put-a", env.now))
        yield store.put("b")  # blocks until consumer takes "a"
        times.append(("put-b", env.now))

    def consumer():
        yield env.timeout(5)
        item = yield store.get()
        times.append(("got", item, env.now))

    env.process(producer())
    env.process(consumer())
    env.run()
    assert ("put-a", 0) in times
    assert ("put-b", 5) in times


def test_store_get_with_filter():
    env = Environment()
    store = Store(env)
    got = []

    def run():
        yield store.put({"tag": 1})
        yield store.put({"tag": 2})
        item = yield store.get(lambda it: it["tag"] == 2)
        got.append(item["tag"])
        item = yield store.get()
        got.append(item["tag"])

    env.process(run())
    env.run()
    assert got == [2, 1]


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    got = []

    def consumer():
        item = yield store.get()
        got.append((item, env.now))

    def producer():
        yield env.timeout(9)
        yield store.put("late")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert got == [("late", 9)]


def test_store_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Store(env, capacity=0)


def test_priority_store_orders_items():
    env = Environment()
    store = PriorityStore(env)
    got = []

    def run():
        yield store.put((3, "c"))
        yield store.put((1, "a"))
        yield store.put((2, "b"))
        for _ in range(3):
            item = yield store.get()
            got.append(item[1])

    env.process(run())
    env.run()
    assert got == ["a", "b", "c"]


def test_container_get_blocks_until_level():
    env = Environment()
    credits = Container(env, capacity=100, init=0)
    times = []

    def consumer():
        yield credits.get(10)
        times.append(env.now)

    def producer():
        yield env.timeout(3)
        yield credits.put(4)
        yield env.timeout(3)
        yield credits.put(6)

    env.process(consumer())
    env.process(producer())
    env.run()
    assert times == [6]
    assert credits.level == 0


def test_container_put_blocks_at_capacity():
    env = Environment()
    tank = Container(env, capacity=10, init=10)
    times = []

    def producer():
        yield tank.put(5)
        times.append(env.now)

    def consumer():
        yield env.timeout(7)
        yield tank.get(5)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert times == [7]
    assert tank.level == 10


def test_container_fifo_no_starvation():
    env = Environment()
    pool = Container(env, capacity=100, init=0)
    order = []

    def big_then_small():
        def big():
            yield pool.get(50)
            order.append("big")

        def small():
            yield env.timeout(1)
            yield pool.get(1)
            order.append("small")

        env.process(big())
        env.process(small())
        yield env.timeout(2)
        yield pool.put(50)  # enough for big; small must wait behind it
        yield env.timeout(1)
        yield pool.put(1)

    env.process(big_then_small())
    env.run()
    assert order == ["big", "small"]


def test_container_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Container(env, capacity=0)
    with pytest.raises(ValueError):
        Container(env, capacity=5, init=9)
    pool = Container(env, capacity=5)
    with pytest.raises(ValueError):
        pool.get(0)
    with pytest.raises(ValueError):
        pool.put(-1)


def test_priority_resource_cancel_pending_request():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def holder():
        with res.request() as req:
            yield req
            yield env.timeout(10)

    def canceller():
        req = res.request(priority=0)
        yield env.timeout(1)
        req.cancel()            # withdraw before grant

    def worker():
        yield env.timeout(2)
        with res.request(priority=5) as req:
            yield req
            order.append(env.now)

    env.process(holder())
    env.process(canceller())
    env.process(worker())
    env.run()
    # The cancelled high-priority request must not block the worker.
    assert order == [10]


def test_resource_queue_len_tracks_waiters():
    env = Environment()
    res = Resource(env, capacity=1)

    def holder():
        with res.request() as req:
            yield req
            yield env.timeout(10)

    def waiter():
        with res.request() as req:
            yield req

    env.process(holder())
    env.process(waiter())
    env.run(until=5)
    assert res.queue_len == 1
    assert res.count == 1
    env.run()
    assert res.queue_len == 0
