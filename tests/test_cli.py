"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_info_prints_catalog_and_rack(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "CXL" in out
        assert "host0" in out

    def test_table2_calibration_passes(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "remote read" in out
        assert "<-- off" not in out

    def test_demo_promotes_hot_object(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "promotion" in out
        assert "local" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_no_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])
