"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.telemetry import validate_chrome_trace


class TestCli:
    def test_info_prints_catalog_and_rack(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "CXL" in out
        assert "host0" in out

    def test_table2_calibration_passes(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "remote read" in out
        assert "<-- off" not in out

    def test_demo_promotes_hot_object(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "promotion" in out
        assert "local" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_no_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestPerfCli:
    def test_perf_prints_kernel_counters(self, capsys):
        assert main(["perf", "--procs", "20", "--steps", "50"]) == 0
        out = capsys.readouterr().out
        assert "events_processed" in out
        assert "events_per_sec" in out

    def test_perf_bad_argument_rejected(self):
        with pytest.raises(SystemExit):
            main(["perf", "--procs", "not-a-number"])


class TestTraceCli:
    def test_trace_writes_valid_chrome_trace(self, tmp_path, capsys):
        out_file = tmp_path / "trace-t2.json"
        assert main(["trace", "t2", "--out", str(out_file)]) == 0
        stdout = capsys.readouterr().out
        assert "trace[t2]" in stdout
        payload = json.loads(out_file.read_text())
        assert validate_chrome_trace(payload) > 0

    def test_trace_creates_parent_directories(self, tmp_path):
        out_file = tmp_path / "nested" / "deep" / "trace.json"
        assert main(["trace", "starvation", "--out", str(out_file),
                     "--interval", "500"]) == 0
        assert out_file.exists()

    def test_trace_unknown_scenario_exits_two(self, capsys):
        assert main(["trace", "nope", "--out", "unused.json"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_trace_missing_scenario_rejected(self):
        with pytest.raises(SystemExit):
            main(["trace"])


class TestMetricsCli:
    def test_metrics_json_schema(self, capsys):
        assert main(["metrics", "starvation", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == 1
        assert payload["tool"] == "repro-telemetry"
        assert payload["scenario"] == "starvation"
        assert payload["count"] == len(payload["metrics"])
        assert "credits.egress0.stalls" in payload["metrics"]
        assert payload["summary"]["burst_vs_ideal"] > 1.0

    def test_metrics_human_output(self, capsys):
        assert main(["metrics", "interleave"]) == 0
        out = capsys.readouterr().out
        assert "metrics[interleave]" in out
        assert "pcie.sw0.flits_forwarded" in out
        assert "summary:" in out

    def test_metrics_unknown_scenario_exits_two(self, capsys):
        assert main(["metrics", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err


class TestHealthCli:
    def test_health_json_is_schema_valid(self, capsys):
        from repro.telemetry import validate_health_report
        assert main(["health", "--scenario", "starvation",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["tool"] == "repro-health"
        assert validate_health_report(payload) >= 2
        episodes = payload["slos"][0]["alerts"][0]["episodes"]
        assert episodes[0]["fired_at"] == 14_000.0

    def test_health_human_output_names_the_alert(self, capsys):
        assert main(["health", "--scenario", "starvation"]) == 0
        out = capsys.readouterr().out
        assert "health[starvation]" in out
        assert "FIRED at 14,000.0 ns" in out
        assert "anomaly stall_spike" in out

    def test_health_fair_policy_quiet(self, capsys):
        assert main(["health", "--scenario", "starvation",
                     "--policy", "fair"]) == 0
        out = capsys.readouterr().out
        assert "quiet" in out and "FIRED" not in out

    def test_health_writes_selfcontained_dashboard(self, tmp_path,
                                                   capsys):
        out_file = tmp_path / "health.html"
        assert main(["health", "--scenario", "starvation",
                     "--html", str(out_file)]) == 0
        page = out_file.read_text()
        assert page.startswith("<!DOCTYPE html>")
        assert "http" not in page

    def test_health_custom_slo_spec(self, tmp_path, capsys):
        spec = tmp_path / "slo.json"
        spec.write_text(json.dumps({"slos": [], "anomaly": []}))
        assert main(["health", "--scenario", "t2",
                     "--slo", str(spec), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["slos"] == []

    def test_health_bad_inputs_exit_two(self, capsys):
        assert main(["health", "--scenario", "nope"]) == 2
        assert "unknown" in capsys.readouterr().err
        assert main(["health", "--scenario", "starvation",
                     "--window", "1500"]) == 2
        assert "multiple" in capsys.readouterr().err
        assert main(["health", "--scenario", "t2",
                     "--policy", "fair"]) == 2
        assert "starvation" in capsys.readouterr().err

    def test_health_feedback_surfaces_the_action_log(self, capsys):
        assert main(["health", "--scenario", "starvation",
                     "--feedback", "default"]) == 0
        out = capsys.readouterr().out
        assert "control: 1 action(s)" in out
        assert "rule rescue-quiet" in out
        assert "14,000.0 ns" in out

    def test_health_feedback_json_carries_control_section(self, capsys):
        from repro.telemetry import validate_health_report
        assert main(["health", "--scenario", "starvation",
                     "--feedback", "default", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert validate_health_report(payload) >= 2
        control = payload["control"]
        assert control["policy"]["source"] == "default"
        assert [a["t"] for a in control["actions"]] == [14_000.0]

    def test_health_feedback_bad_inputs_exit_two(self, capsys, tmp_path):
        assert main(["health", "--scenario", "starvation",
                     "--feedback", str(tmp_path / "nope.json")]) == 2
        assert "cannot read" in capsys.readouterr().err
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"rules": []}))
        assert main(["health", "--scenario", "starvation",
                     "--feedback", str(bad)]) == 2
        assert "rules" in capsys.readouterr().err
        assert main(["health", "--scenario", "t2",
                     "--feedback", "default"]) == 2
        assert "no default feedback policy" in capsys.readouterr().err

    def test_health_help_documents_exit_codes(self, capsys):
        with pytest.raises(SystemExit):
            main(["health", "--help"])
        out = capsys.readouterr().out
        assert "exit codes:" in out
        assert "bad input" in out


class TestListCli:
    def test_list_prints_catalog(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table2_hierarchy" in out
        assert "scenario" in out
        assert "repro bench" in out

    def test_list_json_is_schema_stable(self, capsys):
        assert main(["list", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        names = [row["name"] for row in rows]
        assert "flit_rtt" in names
        assert "t2" in names
        for row in rows:
            assert set(row) == {"name", "kind", "description",
                                "params", "outputs"}


class TestBenchCli:
    def test_bench_prints_table(self, capsys):
        assert main(["bench", "flit_rtt", "--set", "max_hops=1",
                     "--set", "pings=2"]) == 0
        out = capsys.readouterr().out
        assert "C4: unloaded 64B flit RTT" in out
        assert "1 switch(es)" in out

    def test_bench_json_document(self, capsys):
        assert main(["bench", "flit_rtt", "--set", "max_hops=1",
                     "--set", "pings=2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == 1
        assert payload["tool"] == "repro-experiments"
        assert payload["params"]["max_hops"] == 1
        assert payload["outputs"]["summary"]["rows"]

    def test_bench_unknown_experiment_exits_two(self, capsys):
        assert main(["bench", "nope"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment 'nope'" in err
        assert "choose from" in err

    def test_bench_unknown_parameter_exits_two(self, capsys):
        assert main(["bench", "flit_rtt", "--set", "bogus=1"]) == 2
        err = capsys.readouterr().err
        assert "no parameter 'bogus'" in err
        assert "max_hops" in err

    def test_bench_malformed_set_exits_two(self, capsys):
        assert main(["bench", "flit_rtt", "--set", "max_hops"]) == 2
        assert "name=value" in capsys.readouterr().err

    def test_bench_unparseable_value_exits_two(self, capsys):
        assert main(["bench", "flit_rtt", "--set",
                     "max_hops=lots"]) == 2
        assert "cannot parse" in capsys.readouterr().err

    def test_bench_profile_writes_pstats_file(self, capsys, tmp_path):
        out = tmp_path / "bench.prof"
        assert main(["bench", "flit_rtt", "--set", "max_hops=1",
                     "--set", "pings=2", "--json",
                     "--profile", str(out)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["outputs"]["summary"]["rows"]
        import pstats
        stats = pstats.Stats(str(out))
        assert stats.total_calls > 0


class TestTopoCli:
    def test_topo_list_names_shapes_and_generators(self, capsys):
        assert main(["topo", "list"]) == 0
        out = capsys.readouterr().out
        assert "xswitch_fat_tree_2pod" in out
        assert "fat_tree" in out
        assert "defaults:" in out

    def test_topo_list_json_inventory(self, capsys):
        assert main(["topo", "list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        names = [shape["name"] for shape in payload["shapes"]]
        assert names == ["interleave", "t2_star",
                         "xswitch_fat_tree_2pod"]
        generators = {g["name"] for g in payload["generators"]}
        assert {"star", "chain", "fat_tree",
                "dragonfly"} <= generators

    def test_topo_show_compiles_a_generator_call(self, capsys):
        assert main(["topo", "show", "fat_tree:pods=2,spines=2"]) == 0
        out = capsys.readouterr().out
        assert "fat_tree_p2_l2_s2" in out
        assert "interpod pod0.spine0 <-> pod1.spine0" in out
        assert "reachability:" in out

    def test_topo_show_json_embeds_compile_stats(self, capsys):
        assert main(["topo", "show", "interleave", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["name"] == "interleave"
        assert payload["compiled"]["pairs"] == 6

    def test_topo_show_unknown_lists_choices(self, capsys):
        assert main(["topo", "show", "nope"]) == 2
        err = capsys.readouterr().err
        assert "unknown topology 'nope'" in err
        assert "xswitch_fat_tree_2pod" in err
        assert "fat_tree" in err

    def test_topo_validate_passes_committed_shapes(self, capsys):
        assert main(["topo", "validate"]) == 0
        out = capsys.readouterr().out
        assert out.count("ok   ") == 3
        assert "FAIL" not in out

    def test_topo_validate_rejects_broken_file(self, tmp_path, capsys):
        bad = tmp_path / "broken.json"
        bad.write_text(json.dumps(
            {"name": "broken",
             "pods": [{"name": "p", "switches": [{"name": "s"}],
                       "endpoints": [{"name": "e",
                                      "switch": "missing"}]}]}))
        assert main(["topo", "validate", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "not in pod" in out
