"""Focused unit tests for infra components and misc edge paths."""

import pytest

from repro import params
from repro.fabric import Channel, LinkLayer, Packet, PacketKind, TransactionPort
from repro.infra import (
    Accelerator,
    ClusterSpec,
    FaaSpec,
    FamSpec,
    HostServer,
    build_cluster,
    flat_dram_backend,
)
from repro.pcie import Topology
from repro.sim import Environment, PriorityStore, Store


def run(env, gen, horizon=100_000_000):
    proc = env.process(gen)
    env.run(until=env.now + horizon, until_event=proc)
    assert proc.triggered
    if not proc.ok:
        raise proc.value
    return proc.value


class TestHostAdapter:
    def test_snoop_translates_device_address(self):
        env = Environment()
        cluster = build_cluster(env, ClusterSpec(hosts=1))
        host = cluster.host(0)
        base = host.remote_base("fam0")
        fam_id = cluster.endpoint_id("fam0")

        def go():
            # Cache a remote line, then snoop it by device offset.
            yield from host.mem.access(base + 0x4000, True)
            assert host.mem.levels[0].probe(base + 0x4000)
            snoop = Packet(kind=PacketKind.SNP_INV,
                           channel=Channel.CXL_CACHE,
                           src=fam_id, dst=host.port.port_id,
                           addr=0x4000)
            fam_port = cluster.fam("fam0").port
            response = yield from fam_port.request(snoop)
            return response

        response = run(env, go())
        assert response.meta["was_dirty"] is True
        assert not host.mem.levels[0].probe(base + 0x4000)
        assert host.fha.snoops_served == 1

    def test_memory_request_to_host_faults_politely(self):
        env = Environment()
        cluster = build_cluster(env, ClusterSpec(hosts=1))
        host = cluster.host(0)
        fam_port = cluster.fam("fam0").port

        def go():
            bogus = Packet(kind=PacketKind.MEM_RD,
                           channel=Channel.CXL_MEM,
                           src=fam_port.port_id, dst=host.port.port_id,
                           addr=0, nbytes=64)
            response = yield from fam_port.request(bogus)
            return response.meta

        assert run(env, go()).get("fault") is True

    def test_evict_notice_reaches_cc_directory(self):
        from repro.mem import LineState, NodeKind
        env = Environment()
        cluster = build_cluster(env, ClusterSpec(
            hosts=1, fams=[FamSpec(name="cc", kind=NodeKind.CC_NUMA,
                                   capacity_bytes=1 << 26)]))
        host = cluster.host(0)
        module = cluster.fam("cc").modules[0]
        device_id = cluster.endpoint_id("cc")

        def go():
            yield from host.mem.access(host.remote_base("cc"), True)
            assert module.directory.state_of(0) is LineState.EXCLUSIVE
            yield from host.fha.evict_notice(device_id, 0)

        run(env, go())
        assert module.directory.state_of(0) is LineState.UNCACHED


class TestFamChassis:
    def test_out_of_range_address_faults(self):
        env = Environment()
        cluster = build_cluster(env, ClusterSpec(
            hosts=1, fams=[FamSpec(name="fam0",
                                   capacity_bytes=1 << 20)]))
        host = cluster.host(0)
        fam_id = cluster.endpoint_id("fam0")

        def go():
            packet = Packet(kind=PacketKind.MEM_RD,
                            channel=Channel.CXL_MEM,
                            src=host.port.port_id, dst=fam_id,
                            addr=1 << 30, nbytes=64)
            response = yield from host.port.request(packet)
            return response.meta

        assert run(env, go()).get("fault") is True

    def test_capacity_is_module_sum(self):
        env = Environment()
        cluster = build_cluster(env, ClusterSpec(
            hosts=1, fams=[FamSpec(name="fam0",
                                   capacity_bytes=1 << 24, modules=4)]))
        fam = cluster.fam("fam0")
        assert fam.capacity_bytes == 1 << 24
        assert fam.module_of(0) is fam.modules[0]
        assert fam.module_of((1 << 24) - 1) is fam.modules[3]
        with pytest.raises(IndexError):
            fam.module_of(1 << 24)

    def test_unequal_modules_rejected(self):
        from repro.infra.chassis import FamChassis
        from repro.mem import CpulessExpander
        env = Environment()
        topo = Topology(env)
        topo.add_switch("sw0")
        topo.add_endpoint("fam")
        port = topo.connect_endpoint("sw0", "fam")
        modules = [CpulessExpander(env, 1 << 20),
                   CpulessExpander(env, 1 << 21)]
        with pytest.raises(ValueError):
            FamChassis(env, port, modules)

    def test_empty_chassis_rejected(self):
        from repro.infra.chassis import FamChassis
        env = Environment()
        topo = Topology(env)
        topo.add_switch("sw0")
        topo.add_endpoint("fam")
        port = topo.connect_endpoint("sw0", "fam")
        with pytest.raises(ValueError):
            FamChassis(env, port, [])


class TestAccelerator:
    def test_setup_time_charged(self):
        env = Environment()
        cluster = build_cluster(env, ClusterSpec(
            hosts=1, faas=[FaaSpec(name="faa0", setup_ns=500.0)]))
        accel = next(iter(cluster.faa("faa0").accelerators.values()))
        accel.register("noop", lambda req: (0.0, None))
        host = cluster.host(0)

        def go():
            packet = Packet(kind=PacketKind.IO_WR,
                            channel=Channel.CXL_IO,
                            src=host.port.port_id,
                            dst=cluster.endpoint_id("faa0"), nbytes=64,
                            meta={"kernel": "noop"})
            start = env.now
            yield from host.port.request(packet)
            return env.now - start

        assert run(env, go()) > 500.0

    def test_kernel_listing(self):
        env = Environment()
        accel = Accelerator(env, "a")
        accel.register("fft", lambda r: (0, None))
        accel.register("abs", lambda r: (0, None))
        assert accel.kernels() == ["abs", "fft"]


class TestHostServer:
    def test_duplicate_remote_mapping_rejected(self):
        env = Environment()
        cluster = build_cluster(env, ClusterSpec(hosts=1))
        host = cluster.host(0)
        with pytest.raises(ValueError):
            host.map_remote("fam0", 99, 4096)

    def test_remote_region_lookup(self):
        env = Environment()
        cluster = build_cluster(env, ClusterSpec(hosts=1))
        host = cluster.host(0)
        region = host.remote_region("fam0")
        assert region.is_remote
        assert region.start == host.local_bytes

    def test_describe_lists_regions(self):
        env = Environment()
        cluster = build_cluster(env, ClusterSpec(hosts=1))
        text = cluster.host(0).describe()
        assert "local" in text and "remote" in text

    def test_invalid_core_count(self):
        env = Environment()
        topo = Topology(env)
        topo.add_switch("sw0")
        topo.add_endpoint("h")
        port = topo.connect_endpoint("sw0", "h")
        with pytest.raises(ValueError):
            HostServer(env, "h", port, cores=0)

    def test_flat_dram_backend_streams_extra_lines(self):
        env = Environment()
        backend = flat_dram_backend(env)

        def go():
            start = env.now
            yield from backend(0, 64, False)
            one_line = env.now - start
            start = env.now
            yield from backend(0, 64 * 8, False)
            eight_lines = env.now - start
            return one_line, eight_lines

        one_line, eight_lines = run(env, go())
        assert eight_lines == pytest.approx(
            one_line + 7 * params.DRAM_BUS_NS_PER_CACHELINE)


class TestClusterAccessors:
    def test_indexed_accessors(self):
        env = Environment()
        cluster = build_cluster(env, ClusterSpec(
            hosts=1, faas=[FaaSpec(name="faa0")]))
        assert cluster.fam(0) is cluster.fams["fam0"]
        assert cluster.faa(0) is cluster.faas["faa0"]
        assert cluster.fam("fam0") is cluster.fams["fam0"]
        assert cluster.endpoint_id("host0") == \
            cluster.topology.endpoints["host0"].global_id


class TestTopologyValidation:
    def test_duplicate_names_rejected(self):
        env = Environment()
        topo = Topology(env)
        topo.add_switch("x")
        with pytest.raises(ValueError):
            topo.add_endpoint("x")

    def test_double_connect_endpoint_rejected(self):
        env = Environment()
        topo = Topology(env)
        topo.add_switch("sw0")
        topo.add_switch("sw1")
        topo.add_endpoint("e")
        topo.connect_endpoint("sw0", "e")
        with pytest.raises(ValueError):
            topo.connect_endpoint("sw1", "e")

    def test_port_of_unconnected_raises(self):
        env = Environment()
        topo = Topology(env)
        topo.add_endpoint("e")
        with pytest.raises(ValueError):
            topo.port_of("e")

    def test_switch_attach_duplicate_index_rejected(self):
        env = Environment()
        topo = Topology(env)
        switch = topo.add_switch("sw0")
        link_a = LinkLayer(env, name="a")
        link_b = LinkLayer(env, name="b")
        switch.attach(in_link=link_a, out_link=link_b, index=0)
        with pytest.raises(ValueError):
            switch.attach(in_link=link_b, out_link=link_a, index=0)


class TestStoreEdges:
    def test_priority_store_filtered_get(self):
        env = Environment()
        store = PriorityStore(env)
        got = []

        def go():
            yield store.put((2, "b"))
            yield store.put((1, "a"))
            yield store.put((3, "c"))
            item = yield store.get(lambda it: it[1] == "c")
            got.append(item)
            item = yield store.get()
            got.append(item)

        run(env, go())
        assert got == [(3, "c"), (1, "a")]

    def test_store_filter_blocks_until_match(self):
        env = Environment()
        store = Store(env)
        got = []

        def consumer():
            item = yield store.get(lambda it: it == "wanted")
            got.append((item, env.now))

        def producer():
            yield store.put("other")
            yield env.timeout(10)
            yield store.put("wanted")

        env.process(consumer())
        env.process(producer())
        env.run(until=100)
        assert got == [("wanted", 10)]
        assert store.items == ["other"]


class TestHdmInterleaving:
    def _cluster(self, env):
        cluster = build_cluster(env, ClusterSpec(
            hosts=1, map_all_fams=False,
            fams=[FamSpec(name=f"fam{i}", capacity_bytes=1 << 26)
                  for i in range(4)]))
        return cluster

    def test_stripe_spreads_traffic_across_chassis(self):
        env = Environment()
        cluster = self._cluster(env)
        host = cluster.host(0)
        targets = [(f"fam{i}", cluster.endpoint_id(f"fam{i}"))
                   for i in range(4)]
        region = host.map_interleaved("stripe", targets, size=32 << 20,
                                      granularity=4096)

        def go():
            # Touch 8 distinct 4KB chunks: two per chassis.
            for i in range(8):
                yield from host.mem.access(
                    region.start + i * 4096, True, 4096)

        run(env, go())
        writes = [cluster.fam(f"fam{i}").modules[0].writes
                  for i in range(4)]
        assert all(w >= 2 for w in writes)

    def test_interleaved_scan_faster_than_single_chassis(self):
        def scan_time(ways):
            env = Environment()
            cluster = self._cluster(env)
            host = cluster.host(0)
            targets = [(f"fam{i}", cluster.endpoint_id(f"fam{i}"))
                       for i in range(ways)]
            region = host.map_interleaved("stripe", targets,
                                          size=32 << 20)

            def go():
                start = env.now
                yield from host.mem.access(region.start + (1 << 20),
                                           False, 64 * 1024)
                return env.now - start

            return run(env, go())

        assert scan_time(2) < scan_time(1)

    def test_single_piece_access_stays_synchronous(self):
        env = Environment()
        cluster = self._cluster(env)
        host = cluster.host(0)
        targets = [(f"fam{i}", cluster.endpoint_id(f"fam{i}"))
                   for i in range(2)]
        region = host.map_interleaved("stripe", targets, size=32 << 20)

        def go():
            yield from host.mem.access(region.start + 100, False, 64)

        run(env, go())
        reads = [cluster.fam(f"fam{i}").modules[0].reads
                 for i in range(2)]
        assert sorted(reads) == [0, 1]   # exactly one chassis touched

    def test_validation(self):
        env = Environment()
        cluster = self._cluster(env)
        host = cluster.host(0)
        with pytest.raises(ValueError):
            host.map_interleaved("x", [], size=1 << 20)
        with pytest.raises(ValueError):
            host.map_interleaved("x", [("fam0", 1)], size=1 << 20,
                                 granularity=32)
