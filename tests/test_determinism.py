"""Determinism regression tests for the kernel fast path.

Runs the two headline experiments (C2 PCIe interference and A1 movement
ablation) twice each and asserts the simulated results — latencies AND
the number of kernel events dispatched — are bit-identical.  This is
the guard that event pooling, the calendar queue, and the vectorized
trace draws did not change scheduling semantics: any divergence in
``(time, priority, seq)`` order shows up as a different float or a
different event count here.
"""

import os
import sys

import pytest

from repro.sim import total_events_processed

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..",
                                "benchmarks"))


def _counted(fn, *args):
    before = total_events_processed()
    result = fn(*args)
    return result, total_events_processed() - before


@pytest.mark.parametrize("hosts", [1, 8])
def test_c2_interference_bit_identical(hosts):
    from bench_pcie_interference import one_way_latency

    first, events_first = _counted(one_way_latency, hosts)
    second, events_second = _counted(one_way_latency, hosts)
    assert first == second
    assert events_first == events_second
    assert events_first > 0


@pytest.mark.parametrize("mode", ["naive-sync", "prefetch", "managed"])
def test_a1_movement_bit_identical(mode):
    from repro.experiments.defs.movement import run_movement_case

    first, events_first = _counted(run_movement_case, mode)
    second, events_second = _counted(run_movement_case, mode)
    assert first == second
    assert events_first == events_second
    assert events_first > 0


def test_c2_sweep_matches_recorded_shape():
    """The full sweep is self-consistent run to run (MOPS-row guard)."""
    from bench_pcie_interference import sweep

    rows_first = sweep()
    rows_second = sweep()
    assert rows_first == rows_second
