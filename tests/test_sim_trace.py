"""Tests for tracing, statistics, and the seeded RNG helpers."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import SimRng, StatSeries, Tracer


class TestTracer:
    def test_record_and_filter(self):
        tracer = Tracer()
        tracer.record(1.0, "link.rx", link="a")
        tracer.record(2.0, "switch.fwd", port=3)
        tracer.record(3.0, "link.rx", link="b")
        assert tracer.count("link.rx") == 2
        records = list(tracer.filter("link.rx"))
        assert [r.link for r in records] == ["a", "b"]

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.record(1.0, "x")
        assert tracer.records == []

    def test_field_attribute_access(self):
        tracer = Tracer()
        tracer.record(5.0, "evt", value=42)
        record = tracer.records[0]
        assert record.time == 5.0
        assert record.value == 42
        with pytest.raises(AttributeError):
            _ = record.missing

    def test_clear(self):
        tracer = Tracer()
        tracer.record(1.0, "x")
        tracer.clear()
        assert tracer.count("x") == 0


class TestStatSeries:
    def test_mean_min_max(self):
        series = StatSeries("s")
        for value in (1.0, 2.0, 3.0):
            series.add(value)
        assert series.mean == 2.0
        assert series.minimum == 1.0
        assert series.maximum == 3.0
        assert len(series) == 3

    def test_empty_mean_raises(self):
        with pytest.raises(ValueError):
            _ = StatSeries("s").mean

    def test_percentiles(self):
        series = StatSeries("s")
        for value in range(1, 101):
            series.add(float(value))
        assert series.p50 == 50.0
        assert series.p99 == 99.0
        assert series.percentile(100) == 100.0
        assert series.percentile(0) == 1.0

    def test_percentile_validation(self):
        series = StatSeries("s")
        series.add(1.0)
        with pytest.raises(ValueError):
            series.percentile(101)

    def test_stddev(self):
        series = StatSeries("s")
        for value in (2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0):
            series.add(value)
        assert series.stddev == pytest.approx(math.sqrt(32 / 7))

    def test_single_sample_stddev_zero(self):
        series = StatSeries("s")
        series.add(5.0)
        assert series.stddev == 0.0

    def test_rate_and_mops(self):
        series = StatSeries("s")
        for i in range(11):
            series.add(1.0, time=i * 100.0)   # 10 intervals over 1000ns
        assert series.rate_per_ns() == pytest.approx(0.01)
        assert series.mops() == pytest.approx(10.0)

    def test_rate_without_timestamps_raises(self):
        series = StatSeries("s")
        series.add(1.0)
        with pytest.raises(ValueError):
            series.rate_per_ns()

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=50))
    def test_property_percentile_bounds(self, values):
        series = StatSeries("p")
        for value in values:
            series.add(value)
        assert series.minimum <= series.p50 <= series.maximum
        slack = 1e-9 * max(1.0, abs(series.minimum), abs(series.maximum))
        assert series.minimum - slack <= series.mean \
            <= series.maximum + slack


class TestSimRng:
    def test_same_seed_same_stream(self):
        a, b = SimRng(42), SimRng(42)
        assert [a.random() for _ in range(5)] == \
            [b.random() for _ in range(5)]

    def test_fork_is_deterministic_and_independent(self):
        parent = SimRng(1)
        child1 = parent.fork("traffic")
        child2 = SimRng(1).fork("traffic")
        other = SimRng(1).fork("failures")
        assert child1.random() == child2.random()
        assert SimRng(1).fork("traffic").random() != other.random()

    def test_zipf_skew(self):
        rng = SimRng(3)
        draws = [rng.zipf_index(1000, alpha=0.9) for _ in range(5000)]
        assert all(0 <= d < 1000 for d in draws)
        top_decile = sum(1 for d in draws if d < 100)
        assert top_decile > len(draws) * 0.5

    def test_zipf_validation(self):
        with pytest.raises(ValueError):
            SimRng(0).zipf_index(0)
        assert SimRng(0).zipf_index(1) == 0

    def test_bernoulli_bounds(self):
        rng = SimRng(0)
        assert not rng.bernoulli(0.0)
        with pytest.raises(ValueError):
            rng.bernoulli(1.5)

    def test_expovariate_positive(self):
        rng = SimRng(5)
        assert all(rng.expovariate(0.1) > 0 for _ in range(100))
        with pytest.raises(ValueError):
            rng.expovariate(0)

    def test_pareto_bounded_range(self):
        rng = SimRng(7)
        for _ in range(200):
            value = rng.pareto_bounded(64, 16384)
            assert 64 <= value <= 16384
        with pytest.raises(ValueError):
            rng.pareto_bounded(10, 5)
