"""Tests for the CC-NUMA directory protocol, incl. property tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mem import CoherenceError, Directory, LineState


def do_access(directory, addr, host, is_write):
    action = directory.begin_access(addr, host, is_write)
    directory.complete_access(addr, host, is_write)
    return action


class TestReadPath:
    def test_cold_read_no_snoops(self):
        d = Directory()
        action = d.begin_access(0x100, 1, False)
        assert action.is_noop
        d.complete_access(0x100, 1, False)
        assert d.state_of(0x100) is LineState.SHARED
        assert d.sharers_of(0x100) == {1}

    def test_multiple_readers_share(self):
        d = Directory()
        for host in (1, 2, 3):
            action = do_access(d, 0x100, host, False)
            assert action.is_noop
        assert d.sharers_of(0x100) == {1, 2, 3}

    def test_read_after_foreign_write_forces_writeback(self):
        d = Directory()
        do_access(d, 0x100, 1, True)
        action = d.begin_access(0x100, 2, False)
        assert action.writeback_from == 1
        assert not action.invalidate
        d.complete_access(0x100, 2, False)
        assert d.state_of(0x100) is LineState.SHARED
        assert d.sharers_of(0x100) == {1, 2}


class TestWritePath:
    def test_cold_write_no_snoops(self):
        d = Directory()
        action = do_access(d, 0x100, 1, True)
        assert action.is_noop
        assert d.state_of(0x100) is LineState.EXCLUSIVE

    def test_write_invalidates_all_other_sharers(self):
        d = Directory()
        for host in (1, 2, 3):
            do_access(d, 0x100, host, False)
        action = d.begin_access(0x100, 1, True)
        assert action.invalidate == frozenset({2, 3})
        d.complete_access(0x100, 1, True)
        assert d.sharers_of(0x100) == {1}
        assert d.state_of(0x100) is LineState.EXCLUSIVE

    def test_write_after_foreign_write_fetches_and_invalidates(self):
        d = Directory()
        do_access(d, 0x100, 1, True)
        action = d.begin_access(0x100, 2, True)
        assert action.writeback_from == 1
        assert action.invalidate == frozenset({1})
        d.complete_access(0x100, 2, True)
        assert d.entry(0x100).owner == 2

    def test_repeated_write_by_owner_is_silent(self):
        d = Directory()
        do_access(d, 0x100, 1, True)
        action = d.begin_access(0x100, 1, True)
        assert action.is_noop


class TestEviction:
    def test_evict_last_sharer_uncaches(self):
        d = Directory()
        do_access(d, 0x100, 1, False)
        d.evict(0x100, 1)
        assert d.state_of(0x100) is LineState.UNCACHED

    def test_evict_owner_releases_exclusivity(self):
        d = Directory()
        do_access(d, 0x100, 1, True)
        d.evict(0x100, 1)
        assert d.state_of(0x100) is LineState.UNCACHED
        assert d.entry(0x100).owner is None

    def test_evict_one_of_many_keeps_shared(self):
        d = Directory()
        do_access(d, 0x100, 1, False)
        do_access(d, 0x100, 2, False)
        d.evict(0x100, 1)
        assert d.state_of(0x100) is LineState.SHARED
        assert d.sharers_of(0x100) == {2}

    def test_evict_stranger_is_noop(self):
        d = Directory()
        do_access(d, 0x100, 1, False)
        d.evict(0x100, 9)
        assert d.sharers_of(0x100) == {1}


class TestLineGranularity:
    def test_same_line_offsets_share_entry(self):
        d = Directory(line_bytes=64)
        do_access(d, 0x100, 1, True)
        action = d.begin_access(0x120, 2, False)  # same 64B line
        assert action.writeback_from == 1

    def test_different_lines_independent(self):
        d = Directory(line_bytes=64)
        do_access(d, 0x100, 1, True)
        action = d.begin_access(0x140, 2, True)
        assert action.is_noop


class TestStatsAndValidation:
    def test_counters(self):
        d = Directory()
        do_access(d, 0x100, 1, False)
        do_access(d, 0x100, 2, False)
        do_access(d, 0x100, 3, True)
        assert d.invalidations_sent == 2
        do_access(d, 0x100, 1, False)
        assert d.writebacks_forced == 1

    def test_invalid_line_bytes(self):
        with pytest.raises(ValueError):
            Directory(line_bytes=0)


# -- property-based: invariants survive arbitrary access sequences ---------

operations = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=7),       # line index
        st.integers(min_value=1, max_value=4),       # host
        st.booleans(),                                # is_write
        st.booleans(),                                # evict instead
    ),
    max_size=200,
)


@settings(max_examples=200, deadline=None)
@given(operations)
def test_directory_invariants_hold(ops):
    d = Directory()
    for line, host, is_write, is_evict in ops:
        addr = line * 64
        if is_evict:
            d.evict(addr, host)
        else:
            do_access(d, addr, host, is_write)
        d.check_invariants()


@settings(max_examples=100, deadline=None)
@given(operations)
def test_writer_is_always_sole_holder(ops):
    d = Directory()
    for line, host, is_write, _ in ops:
        addr = line * 64
        do_access(d, addr, host, is_write)
        if is_write:
            assert d.sharers_of(addr) == {host}
            assert d.entry(addr).owner == host
