"""Tests for the DRAM bank/row timing model."""

import pytest

from repro import params
from repro.mem import DramDevice
from repro.sim import Environment


def run_accesses(env, dram, addrs, nbytes=64, is_write=False):
    latencies = []

    def run():
        for addr in addrs:
            latency = yield from dram.access(addr, nbytes, is_write)
            latencies.append(latency)

    env.process(run())
    env.run(until=env.now + 10_000_000)
    return latencies


class TestRowBuffer:
    def test_first_access_is_row_miss(self):
        env = Environment()
        dram = DramDevice(env)
        latencies = run_accesses(env, dram, [0])
        assert dram.row_misses == 1
        expected = params.DRAM_ROW_MISS_NS + params.DRAM_BUS_NS_PER_CACHELINE
        assert latencies[0] == pytest.approx(expected)

    def test_sequential_hits_open_row(self):
        env = Environment()
        dram = DramDevice(env)
        addrs = [i * 64 for i in range(16)]  # all inside one 8KB row
        latencies = run_accesses(env, dram, addrs)
        assert dram.row_misses == 1
        assert dram.row_hits == 15
        assert latencies[1] < latencies[0]

    def test_row_conflict_same_bank(self):
        env = Environment()
        dram = DramDevice(env, banks=2, row_bytes=4096)
        # Same bank (stride = banks*row), different rows: all misses.
        addrs = [0, 2 * 4096, 4 * 4096]
        run_accesses(env, dram, addrs)
        assert dram.row_misses == 3

    def test_bank_interleaving(self):
        env = Environment()
        dram = DramDevice(env, banks=4, row_bytes=4096)
        addrs = [0, 4096, 2 * 4096, 3 * 4096]  # four distinct banks
        run_accesses(env, dram, addrs)
        assert dram.row_misses == 4  # each bank's first access
        # Revisit: all rows still open.
        run_accesses(env, dram, addrs)
        assert dram.row_hits == 4

    def test_row_hit_rate(self):
        env = Environment()
        dram = DramDevice(env)
        run_accesses(env, dram, [0, 64, 128])
        assert dram.row_hit_rate == pytest.approx(2 / 3)


class TestConcurrency:
    def test_bank_parallelism_beats_single_bank(self):
        def total_time(addrs):
            env = Environment()
            dram = DramDevice(env, banks=8, row_bytes=4096)
            done = []

            def one(addr):
                yield from dram.access(addr)
                done.append(env.now)

            for addr in addrs:
                env.process(one(addr))
            env.run(until=1_000_000)
            assert len(done) == len(addrs)
            return max(done)

        same_bank = [i * 8 * 4096 for i in range(8)]   # serialize on bank 0
        spread = [i * 4096 for i in range(8)]           # one per bank
        assert total_time(spread) < total_time(same_bank)

    def test_large_transfer_charges_bus_per_line(self):
        env = Environment()
        dram = DramDevice(env)
        latencies = run_accesses(env, dram, [0], nbytes=16 * 1024)
        expected_bus = 256 * params.DRAM_BUS_NS_PER_CACHELINE
        assert latencies[0] >= expected_bus


class TestValidation:
    def test_invalid_banks(self):
        env = Environment()
        with pytest.raises(ValueError):
            DramDevice(env, banks=0)

    def test_invalid_row(self):
        env = Environment()
        with pytest.raises(ValueError):
            DramDevice(env, row_bytes=32)

    def test_invalid_nbytes(self):
        env = Environment()
        dram = DramDevice(env)

        def run():
            yield from dram.access(0, nbytes=0)

        proc = env.process(run())
        env.run(until=100)
        assert proc.triggered and not proc.ok
        assert isinstance(proc.value, ValueError)

    def test_extra_latency_applied(self):
        env = Environment()
        dram = DramDevice(env, extra_ns=500.0)
        latencies = run_accesses(env, dram, [0])
        assert latencies[0] > 500.0
